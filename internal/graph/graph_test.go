package graph

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"octopus/internal/rng"
)

func triangle(t *testing.T) *Graph {
	t.Helper()
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(0, 2)
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	g := triangle(t)
	if g.NumNodes() != 3 || g.NumEdges() != 4 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
	if g.OutDegree(0) != 2 || g.InDegree(0) != 1 {
		t.Fatalf("deg(0) out=%d in=%d", g.OutDegree(0), g.InDegree(0))
	}
	if got := g.OutNeighbors(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("OutNeighbors(0) = %v", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBuilderDedupAndSelfLoop(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	b.AddEdge(1, 1) // dropped
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("m=%d, want 1 (dedup + self-loop drop)", g.NumEdges())
	}
}

func TestImplicitGrowth(t *testing.T) {
	b := NewBuilder(0)
	b.AddEdge(5, 9)
	g := b.Build()
	if g.NumNodes() != 10 {
		t.Fatalf("n=%d, want 10", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFindEdgeAndSrc(t *testing.T) {
	g := triangle(t)
	e, ok := g.FindEdge(0, 2)
	if !ok {
		t.Fatal("edge (0,2) not found")
	}
	if g.Dst(e) != 2 || g.Src(e) != 0 {
		t.Fatalf("edge endpoints wrong: src=%d dst=%d", g.Src(e), g.Dst(e))
	}
	if _, ok := g.FindEdge(1, 0); ok {
		t.Fatal("found nonexistent edge (1,0)")
	}
}

func TestReverseAdjacency(t *testing.T) {
	g := triangle(t)
	lo, hi := g.InSlots(2)
	if hi-lo != 2 {
		t.Fatalf("in-degree of 2 = %d", hi-lo)
	}
	srcs := map[NodeID]bool{}
	for s := lo; s < hi; s++ {
		srcs[g.InSrc(s)] = true
		e := g.InEdgeID(s)
		if g.Dst(e) != 2 {
			t.Fatalf("reverse slot edge %d has dst %d", e, g.Dst(e))
		}
	}
	if !srcs[0] || !srcs[1] {
		t.Fatalf("in-sources of 2 = %v", srcs)
	}
}

func TestNames(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	b.SetName(0, "Rakesh Agrawal")
	b.SetName(1, "Jiawei Han")
	g := b.Build()
	if g.Name(0) != "Rakesh Agrawal" {
		t.Fatalf("Name(0) = %q", g.Name(0))
	}
	id, ok := g.Lookup("Jiawei Han")
	if !ok || id != 1 {
		t.Fatalf("Lookup = %d,%v", id, ok)
	}
	if _, ok := g.Lookup("nobody"); ok {
		t.Fatal("Lookup found nonexistent name")
	}
}

func TestNoNames(t *testing.T) {
	g := triangle(t)
	if g.Name(0) != "" || g.Names() != nil {
		t.Fatal("unnamed graph should return empty names")
	}
}

func TestTextRoundTrip(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(3, 0)
	b.SetName(0, "alice smith")
	b.SetName(3, "bob")
	g := b.Build()

	var buf bytes.Buffer
	if err := WriteText(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	if g2.Name(0) != "alice smith" || g2.Name(3) != "bob" {
		t.Fatalf("round trip lost names: %q %q", g2.Name(0), g2.Name(3))
	}
	if _, ok := g2.FindEdge(3, 0); !ok {
		t.Fatal("round trip lost edge (3,0)")
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReadTextErrors(t *testing.T) {
	cases := []string{
		"e 1",    // missing dst
		"e a b",  // non-numeric
		"v 0",    // missing name
		"x 1 2",  // unknown record
		"n",      // missing count
		"n -5",   // negative count
		"e -1 2", // negative id
	}
	for _, c := range cases {
		if _, err := ReadText(strings.NewReader(c)); err == nil {
			t.Fatalf("ReadText(%q) succeeded, want error", c)
		}
	}
}

func TestReadTextCommentsAndBlank(t *testing.T) {
	in := "# a comment\n\nn 3\ne 0 1\n# another\ne 1 2\n"
	g, err := ReadText(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("n=%d m=%d", g.NumNodes(), g.NumEdges())
	}
}

func TestBFSForwardOrder(t *testing.T) {
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g := b.Build()
	var order []NodeID
	var depths []int
	g.BFSForward([]NodeID{0}, func(u NodeID, d int) bool {
		order = append(order, u)
		depths = append(depths, d)
		return true
	})
	if len(order) != 5 {
		t.Fatalf("visited %d nodes, want 5 (node 5 unreachable)", len(order))
	}
	for i := 1; i < len(depths); i++ {
		if depths[i] < depths[i-1] {
			t.Fatal("BFS depths not monotone")
		}
	}
	if depths[len(depths)-1] != 3 {
		t.Fatalf("max depth = %d, want 3", depths[len(depths)-1])
	}
}

func TestBFSEarlyStop(t *testing.T) {
	g := triangle(t)
	count := 0
	g.BFSForward([]NodeID{0}, func(NodeID, int) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestBFSReverse(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 3)
	b.AddEdge(1, 3)
	b.AddEdge(2, 1)
	g := b.Build()
	var got []NodeID
	g.BFSReverse([]NodeID{3}, func(u NodeID, _ int) bool {
		got = append(got, u)
		return true
	})
	if len(got) != 4 {
		t.Fatalf("reverse BFS reached %v", got)
	}
}

func TestReachableCount(t *testing.T) {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	if got := g.ReachableCount(0); got != 3 {
		t.Fatalf("ReachableCount(0) = %d, want 3", got)
	}
	if got := g.ReachableCount(4); got != 1 {
		t.Fatalf("ReachableCount(4) = %d, want 1", got)
	}
}

func TestLocalSubgraph(t *testing.T) {
	// chain 0->1->2->3 with a side edge 1->4
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(1, 4)
	g := b.Build()
	ball, boundary := g.LocalSubgraph(0, 2)
	if len(ball) != 4 { // 0,1,2,4
		t.Fatalf("ball = %v", ball)
	}
	// node 2 is at radius with an escaping edge to 3; node 4 at radius.
	bset := map[NodeID]bool{}
	for _, u := range boundary {
		bset[u] = true
	}
	if !bset[2] {
		t.Fatalf("boundary %v missing node 2", boundary)
	}
	if bset[0] || bset[1] {
		t.Fatalf("interior nodes in boundary: %v", boundary)
	}
}

func TestComputeStats(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(0, 3)
	g := b.Build()
	s := g.ComputeStats()
	if s.Nodes != 4 || s.Edges != 3 || s.MaxOutDeg != 3 || s.MaxInDeg != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.Sources != 1 { // node 0
		t.Fatalf("sources = %d", s.Sources)
	}
	if s.Sinks != 3 {
		t.Fatalf("sinks = %d", s.Sinks)
	}
	if s.AvgDeg != 0.75 {
		t.Fatalf("avg = %v", s.AvgDeg)
	}
}

// Property: any random edge list builds a graph that validates and whose
// adjacency agrees with the input set.
func TestQuickBuildValidates(t *testing.T) {
	f := func(seed uint64, nEdges uint8) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(40)
		b := NewBuilder(n)
		type pair struct{ u, v NodeID }
		want := map[pair]bool{}
		for i := 0; i < int(nEdges); i++ {
			u := NodeID(r.Intn(n))
			v := NodeID(r.Intn(n))
			b.AddEdge(u, v)
			if u != v {
				want[pair{u, v}] = true
			}
		}
		g := b.Build()
		if g.Validate() != nil {
			return false
		}
		if g.NumEdges() != len(want) {
			return false
		}
		for p := range want {
			if _, ok := g.FindEdge(p.u, p.v); !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: text round-trip preserves the edge set exactly.
func TestQuickTextRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(20)
		b := NewBuilder(n)
		for i := 0; i < 30; i++ {
			b.AddEdge(NodeID(r.Intn(n)), NodeID(r.Intn(n)))
		}
		g := b.Build()
		var buf bytes.Buffer
		if WriteText(&buf, g) != nil {
			return false
		}
		g2, err := ReadText(&buf)
		if err != nil || g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
			return false
		}
		for u := NodeID(0); u < NodeID(g.NumNodes()); u++ {
			a, b2 := g.OutNeighbors(u), g2.OutNeighbors(u)
			if len(a) != len(b2) {
				return false
			}
			for i := range a {
				if a[i] != b2[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuild(b *testing.B) {
	r := rng.New(1)
	const n, m = 10000, 50000
	type pair struct{ u, v NodeID }
	edges := make([]pair, m)
	for i := range edges {
		edges[i] = pair{NodeID(r.Intn(n)), NodeID(r.Intn(n))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bu := NewBuilder(n)
		for _, e := range edges {
			bu.AddEdge(e.u, e.v)
		}
		g := bu.Build()
		_ = g
	}
}

func BenchmarkBFS(b *testing.B) {
	r := rng.New(2)
	const n = 20000
	bu := NewBuilder(n)
	for i := 0; i < 5*n; i++ {
		bu.AddEdge(NodeID(r.Intn(n)), NodeID(r.Intn(n)))
	}
	g := bu.Build()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		count := 0
		g.BFSForward([]NodeID{NodeID(i % n)}, func(NodeID, int) bool { count++; return true })
	}
}
