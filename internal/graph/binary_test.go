package graph

import (
	"bytes"
	"testing"
)

func buildSample() *Graph {
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(4, 3)
	b.SetName(0, "alice")
	b.SetName(4, "eve smith")
	return b.Build()
}

func TestBinaryRoundTrip(t *testing.T) {
	g := buildSample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumNodes() != g.NumNodes() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("dims = (%d,%d), want (%d,%d)",
			g2.NumNodes(), g2.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	g.EachEdge(func(e EdgeID, u, v NodeID) {
		e2, ok := g2.FindEdge(u, v)
		if !ok || e2 != e {
			t.Fatalf("edge (%d,%d) id %d -> (%d,%v)", u, v, e, e2, ok)
		}
	})
	// Reverse adjacency was reconstructed, not copied.
	if g2.InDegree(2) != g.InDegree(2) {
		t.Fatalf("in-degree(2) = %d, want %d", g2.InDegree(2), g.InDegree(2))
	}
	if g2.Name(4) != "eve smith" {
		t.Fatalf("name(4) = %q", g2.Name(4))
	}
	if id, ok := g2.Lookup("alice"); !ok || id != 0 {
		t.Fatalf("lookup(alice) = (%d,%v)", id, ok)
	}
	if err := g2.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestBinaryRoundTripNoNames(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	g := b.Build()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.Names() != nil {
		t.Fatalf("names = %v, want nil", g2.Names())
	}
	if g2.Name(0) != "" {
		t.Fatalf("name(0) = %q", g2.Name(0))
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	g := buildSample()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Truncation at every prefix must error, never panic.
	for cut := 0; cut < len(full); cut += 7 {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// An out-of-range destination must be caught.
	bad := append([]byte(nil), full...)
	// outDst entries start after: version(1) + n(4) + offLen(8) + offs + dstLen(8).
	off := 1 + 4 + 8 + 4*(g.NumNodes()+1) + 8
	bad[off] = 0xff
	bad[off+1] = 0xff
	bad[off+2] = 0xff
	bad[off+3] = 0x7f
	if _, err := ReadBinary(bytes.NewReader(bad)); err == nil {
		t.Fatal("corrupt destination accepted")
	}
}
