package graph

// BFSForward visits nodes reachable from roots along out-edges in
// breadth-first order, calling visit(node, depth). Returning false from
// visit stops the traversal early. The queue and visited set are
// allocated per call; hot paths in the engines use their own epoch-based
// traversal state instead.
func (g *Graph) BFSForward(roots []NodeID, visit func(u NodeID, depth int) bool) {
	g.bfs(roots, visit, true)
}

// BFSReverse is BFSForward along in-edges.
func (g *Graph) BFSReverse(roots []NodeID, visit func(u NodeID, depth int) bool) {
	g.bfs(roots, visit, false)
}

func (g *Graph) bfs(roots []NodeID, visit func(NodeID, int) bool, forward bool) {
	type qe struct {
		u NodeID
		d int32
	}
	seen := make([]bool, g.n)
	queue := make([]qe, 0, len(roots))
	for _, r := range roots {
		if !seen[r] {
			seen[r] = true
			queue = append(queue, qe{r, 0})
		}
	}
	for i := 0; i < len(queue); i++ {
		cur := queue[i]
		if !visit(cur.u, int(cur.d)) {
			return
		}
		if forward {
			for _, v := range g.OutNeighbors(cur.u) {
				if !seen[v] {
					seen[v] = true
					queue = append(queue, qe{v, cur.d + 1})
				}
			}
		} else {
			lo, hi := g.InSlots(cur.u)
			for s := lo; s < hi; s++ {
				v := g.InSrc(s)
				if !seen[v] {
					seen[v] = true
					queue = append(queue, qe{v, cur.d + 1})
				}
			}
		}
	}
}

// ReachableCount returns the number of nodes reachable from u along
// out-edges (including u).
func (g *Graph) ReachableCount(u NodeID) int {
	count := 0
	g.BFSForward([]NodeID{u}, func(NodeID, int) bool { count++; return true })
	return count
}

// LocalSubgraph returns the set of nodes within radius hops of root along
// out-edges (including root), in BFS order, along with the set of
// boundary nodes: members of the ball whose out-edges leave it or that
// sit exactly at the radius.
func (g *Graph) LocalSubgraph(root NodeID, radius int) (ball, boundary []NodeID) {
	depth := map[NodeID]int{}
	g.BFSForward([]NodeID{root}, func(u NodeID, d int) bool {
		if d > radius {
			// BFS visits in non-decreasing depth, so nothing past this
			// point belongs to the ball.
			return false
		}
		depth[u] = d
		ball = append(ball, u)
		return true
	})
	inBall := make(map[NodeID]bool, len(ball))
	for _, u := range ball {
		inBall[u] = true
	}
	for _, u := range ball {
		if depth[u] == radius {
			boundary = append(boundary, u)
			continue
		}
		for _, v := range g.OutNeighbors(u) {
			if !inBall[v] {
				boundary = append(boundary, u)
				break
			}
		}
	}
	return ball, boundary
}
