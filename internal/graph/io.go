package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The text format is line-oriented:
//
//	# comment
//	n <numNodes>
//	v <id> <name with spaces allowed>
//	e <src> <dst>
//
// The `n` record is optional (node count is inferred otherwise); `v`
// records are optional per node. Lines may appear in any order.

// WriteText serializes g to w in the text format.
func WriteText(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "n %d\n", g.NumNodes()); err != nil {
		return err
	}
	if g.names != nil {
		for u := int32(0); u < g.n; u++ {
			if g.names[u] != "" {
				if _, err := fmt.Fprintf(bw, "v %d %s\n", u, g.names[u]); err != nil {
					return err
				}
			}
		}
	}
	for u := int32(0); u < g.n; u++ {
		lo, hi := g.OutEdges(u)
		for e := lo; e < hi; e++ {
			if _, err := fmt.Fprintf(bw, "e %d %d\n", u, g.outDst[e]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadText parses the text format and builds a Graph.
func ReadText(r io.Reader) (*Graph, error) {
	b := NewBuilder(0)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.SplitN(line, " ", 3)
		switch fields[0] {
		case "n":
			if len(fields) < 2 {
				return nil, fmt.Errorf("graph: line %d: n record needs a count", lineNo)
			}
			n, err := strconv.Atoi(fields[1])
			if err != nil || n < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node count %q", lineNo, fields[1])
			}
			if n > 0 {
				b.grow(int32(n - 1))
			}
		case "v":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: v record needs id and name", lineNo)
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil || id < 0 {
				return nil, fmt.Errorf("graph: line %d: bad node id %q", lineNo, fields[1])
			}
			b.SetName(int32(id), fields[2])
		case "e":
			if len(fields) < 3 {
				return nil, fmt.Errorf("graph: line %d: e record needs src and dst", lineNo)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(strings.TrimSpace(fields[2]))
			if err1 != nil || err2 != nil || u < 0 || v < 0 {
				return nil, fmt.Errorf("graph: line %d: bad edge %q", lineNo, line)
			}
			b.AddEdge(int32(u), int32(v))
		default:
			return nil, fmt.Errorf("graph: line %d: unknown record type %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: read: %w", err)
	}
	return b.Build(), nil
}
