// Package graph implements the directed social-graph substrate of the
// OCTOPUS reproduction: a compressed-sparse-row (CSR) representation with
// both forward and reverse adjacency, stable edge identifiers, node names,
// a mutable builder, text serialization and basic statistics.
//
// Edge identifiers are indices into the forward CSR edge array; every
// per-edge model quantity elsewhere in the system (topic probabilities,
// learned parameters, sampled coin thresholds) is stored in slices aligned
// with these ids, so the graph is the single source of truth for edge
// ordering.
package graph

import (
	"fmt"
	"sort"
)

// NodeID identifies a node; ids are dense in [0, NumNodes).
type NodeID = int32

// EdgeID identifies a directed edge; ids are dense in [0, NumEdges) in
// forward CSR order (sorted by source, then destination).
type EdgeID = int32

// Graph is an immutable directed graph in CSR form. Construct with a
// Builder. All exported methods are safe for concurrent readers.
type Graph struct {
	n int32

	outOff []int32  // len n+1; out-edges of u are ids outOff[u]..outOff[u+1]
	outDst []NodeID // len m; destination of each edge id

	inOff  []int32  // len n+1; in-adjacency offsets
	inSrc  []NodeID // len m; source of each reverse slot
	inEdge []EdgeID // len m; forward edge id of each reverse slot

	names   []string // optional display names, len n or nil
	nameIdx map[string]NodeID
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return int(g.n) }

// NumEdges returns the number of directed edges.
func (g *Graph) NumEdges() int { return len(g.outDst) }

// OutDegree returns the out-degree of u.
func (g *Graph) OutDegree(u NodeID) int { return int(g.outOff[u+1] - g.outOff[u]) }

// InDegree returns the in-degree of u.
func (g *Graph) InDegree(u NodeID) int { return int(g.inOff[u+1] - g.inOff[u]) }

// OutEdges returns the half-open edge-id range [lo,hi) of u's out-edges.
func (g *Graph) OutEdges(u NodeID) (lo, hi EdgeID) { return g.outOff[u], g.outOff[u+1] }

// Dst returns the destination of edge e.
func (g *Graph) Dst(e EdgeID) NodeID { return g.outDst[e] }

// OutNeighbors returns the destinations of u's out-edges as a shared
// slice; callers must not modify it.
func (g *Graph) OutNeighbors(u NodeID) []NodeID {
	return g.outDst[g.outOff[u]:g.outOff[u+1]]
}

// InSlots returns the half-open range [lo,hi) of u's reverse-adjacency
// slots; use InSrc and InEdgeID to resolve each slot.
func (g *Graph) InSlots(u NodeID) (lo, hi int32) { return g.inOff[u], g.inOff[u+1] }

// InSrc returns the source node of reverse slot s.
func (g *Graph) InSrc(s int32) NodeID { return g.inSrc[s] }

// InEdgeID returns the forward edge id of reverse slot s.
func (g *Graph) InEdgeID(s int32) EdgeID { return g.inEdge[s] }

// FindEdge returns the edge id of (u,v) using binary search over u's
// sorted out-neighbors; ok is false if the edge does not exist.
func (g *Graph) FindEdge(u, v NodeID) (EdgeID, bool) {
	lo, hi := g.outOff[u], g.outOff[u+1]
	for lo < hi {
		mid := (lo + hi) / 2
		switch {
		case g.outDst[mid] < v:
			lo = mid + 1
		case g.outDst[mid] > v:
			hi = mid
		default:
			return mid, true
		}
	}
	return -1, false
}

// Src returns the source of edge e by binary search over the offset
// array. O(log n); prefer iterating OutEdges when the source is known.
func (g *Graph) Src(e EdgeID) NodeID {
	// find u with outOff[u] <= e < outOff[u+1]
	u := sort.Search(int(g.n), func(i int) bool { return g.outOff[i+1] > e })
	return NodeID(u)
}

// EachEdge calls fn for every edge in forward CSR order (by source,
// then destination) with the edge id and its endpoints.
func (g *Graph) EachEdge(fn func(e EdgeID, u, v NodeID)) {
	for u := int32(0); u < g.n; u++ {
		for e := g.outOff[u]; e < g.outOff[u+1]; e++ {
			fn(e, u, g.outDst[e])
		}
	}
}

// Name returns the display name of u ("" if names are absent).
func (g *Graph) Name(u NodeID) string {
	if g.names == nil {
		return ""
	}
	return g.names[u]
}

// Names returns all display names (nil if absent); callers must not
// modify the returned slice.
func (g *Graph) Names() []string { return g.names }

// Lookup resolves a display name to a node id.
func (g *Graph) Lookup(name string) (NodeID, bool) {
	id, ok := g.nameIdx[name]
	return id, ok
}

// Builder accumulates edges and produces an immutable Graph. Duplicate
// edges are merged; self-loops are dropped (an IC cascade cannot use
// them). The zero value is ready to use.
type Builder struct {
	n     int32
	edges []edge
	names []string
}

type edge struct{ u, v NodeID }

// NewBuilder returns a Builder expecting n nodes (ids 0..n-1). More nodes
// may be introduced implicitly by AddEdge.
func NewBuilder(n int) *Builder { return &Builder{n: int32(n)} }

// SetName assigns a display name to node u, growing the node count if
// needed.
func (b *Builder) SetName(u NodeID, name string) {
	b.grow(u)
	for int(u) >= len(b.names) {
		b.names = append(b.names, "")
	}
	b.names[u] = name
}

// AddEdge records the directed edge (u,v).
func (b *Builder) AddEdge(u, v NodeID) {
	if u == v {
		return
	}
	b.grow(u)
	b.grow(v)
	b.edges = append(b.edges, edge{u, v})
}

// AddGraph records every edge and display name of g, growing the node
// count to cover g's nodes. Used to extend an immutable graph: copy it
// into a fresh builder, add the new edges, and Build.
func (b *Builder) AddGraph(g *Graph) {
	if n := NodeID(g.NumNodes()); n > 0 {
		b.grow(n - 1)
	}
	g.EachEdge(func(_ EdgeID, u, v NodeID) { b.AddEdge(u, v) })
	for u, nm := range g.Names() {
		if nm != "" {
			b.SetName(NodeID(u), nm)
		}
	}
}

func (b *Builder) grow(u NodeID) {
	if u >= b.n {
		b.n = u + 1
	}
}

// NumPendingEdges returns the number of edges recorded so far (before
// dedup).
func (b *Builder) NumPendingEdges() int { return len(b.edges) }

// Build finalizes the graph. The builder may be reused afterwards but
// shares no memory with the result.
func (b *Builder) Build() *Graph {
	n := b.n
	es := append([]edge(nil), b.edges...)
	sort.Slice(es, func(i, j int) bool {
		if es[i].u != es[j].u {
			return es[i].u < es[j].u
		}
		return es[i].v < es[j].v
	})
	// Dedup.
	out := es[:0]
	for i, e := range es {
		if i == 0 || e != es[i-1] {
			out = append(out, e)
		}
	}
	es = out
	m := len(es)

	g := &Graph{
		n:      n,
		outOff: make([]int32, n+1),
		outDst: make([]NodeID, m),
		inOff:  make([]int32, n+1),
		inSrc:  make([]NodeID, m),
		inEdge: make([]EdgeID, m),
	}
	for i, e := range es {
		g.outDst[i] = e.v
		g.outOff[e.u+1]++
		g.inOff[e.v+1]++
	}
	for i := int32(0); i < n; i++ {
		g.outOff[i+1] += g.outOff[i]
		g.inOff[i+1] += g.inOff[i]
	}
	cursor := make([]int32, n)
	copy(cursor, g.inOff[:n])
	for i, e := range es {
		slot := cursor[e.v]
		cursor[e.v]++
		g.inSrc[slot] = e.u
		g.inEdge[slot] = EdgeID(i)
	}
	if len(b.names) > 0 {
		g.names = make([]string, n)
		copy(g.names, b.names)
		g.nameIdx = make(map[string]NodeID, n)
		for i, nm := range g.names {
			if nm != "" {
				g.nameIdx[nm] = NodeID(i)
			}
		}
	}
	return g
}

// Stats summarizes the degree structure of a graph.
type Stats struct {
	Nodes, Edges           int
	MaxOutDeg, MaxInDeg    int
	AvgDeg                 float64
	Sources, Sinks         int // nodes with in-degree 0 / out-degree 0
	DegreeHistogramBuckets []int
}

// ComputeStats returns summary statistics; the degree histogram has
// log2-spaced buckets of out-degree: [0], [1], [2,3], [4,7], ...
func (g *Graph) ComputeStats() Stats {
	s := Stats{Nodes: g.NumNodes(), Edges: g.NumEdges()}
	hist := make([]int, 2, 8)
	for u := int32(0); u < g.n; u++ {
		od, id := g.OutDegree(u), g.InDegree(u)
		if od > s.MaxOutDeg {
			s.MaxOutDeg = od
		}
		if id > s.MaxInDeg {
			s.MaxInDeg = id
		}
		if id == 0 {
			s.Sources++
		}
		if od == 0 {
			s.Sinks++
		}
		b := 0
		if od > 0 {
			for d := od; d > 0; d >>= 1 {
				b++
			}
		}
		for len(hist) <= b {
			hist = append(hist, 0)
		}
		hist[b]++
	}
	if g.n > 0 {
		s.AvgDeg = float64(g.NumEdges()) / float64(g.n)
	}
	s.DegreeHistogramBuckets = hist
	return s
}

// Validate checks internal CSR invariants, returning a descriptive error
// on corruption. It is used by tests and by the binary loaders.
func (g *Graph) Validate() error {
	if len(g.outOff) != int(g.n)+1 || len(g.inOff) != int(g.n)+1 {
		return fmt.Errorf("graph: offset array lengths (%d,%d) do not match n=%d",
			len(g.outOff), len(g.inOff), g.n)
	}
	if g.outOff[0] != 0 || g.inOff[0] != 0 {
		return fmt.Errorf("graph: offsets must start at 0")
	}
	m := int32(len(g.outDst))
	if g.outOff[g.n] != m || g.inOff[g.n] != m {
		return fmt.Errorf("graph: final offsets (%d,%d) do not match m=%d",
			g.outOff[g.n], g.inOff[g.n], m)
	}
	for u := int32(0); u < g.n; u++ {
		if g.outOff[u] > g.outOff[u+1] || g.inOff[u] > g.inOff[u+1] {
			return fmt.Errorf("graph: non-monotone offsets at node %d", u)
		}
		for e := g.outOff[u]; e < g.outOff[u+1]; e++ {
			v := g.outDst[e]
			if v < 0 || v >= g.n {
				return fmt.Errorf("graph: edge %d destination %d out of range", e, v)
			}
			if e > g.outOff[u] && g.outDst[e-1] >= v {
				return fmt.Errorf("graph: out-neighbors of %d not strictly sorted", u)
			}
		}
	}
	seen := make([]bool, m)
	for v := int32(0); v < g.n; v++ {
		for s := g.inOff[v]; s < g.inOff[v+1]; s++ {
			e := g.inEdge[s]
			if e < 0 || e >= m {
				return fmt.Errorf("graph: reverse slot %d references edge %d out of range", s, e)
			}
			if seen[e] {
				return fmt.Errorf("graph: edge %d appears twice in reverse adjacency", e)
			}
			seen[e] = true
			if g.outDst[e] != v {
				return fmt.Errorf("graph: reverse slot %d edge %d does not point to %d", s, e, v)
			}
			if g.inSrc[s] < 0 || g.inSrc[s] >= g.n {
				return fmt.Errorf("graph: reverse slot %d source out of range", s)
			}
			if fe, ok := g.FindEdge(g.inSrc[s], v); !ok || fe != e {
				return fmt.Errorf("graph: reverse slot %d inconsistent with forward edge", s)
			}
		}
	}
	return nil
}
