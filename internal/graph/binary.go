package graph

import (
	"fmt"
	"io"

	"octopus/internal/binio"
)

// Binary payload format (version 1): the forward CSR arrays plus
// optional display names. The reverse adjacency is reconstructed on
// load with a linear counting pass — cheaper than re-sorting edges
// through a Builder and byte-for-byte deterministic.
const graphBinaryVersion = 1

// WriteBinary serializes g's CSR representation.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := binio.NewWriter(w)
	bw.U8(graphBinaryVersion)
	bw.I32(g.n)
	bw.I32s(g.outOff)
	bw.I32s(g.outDst)
	if g.names != nil {
		bw.U8(1)
		bw.Strs(g.names)
	} else {
		bw.U8(0)
	}
	return bw.Flush()
}

// ReadBinary parses the payload produced by WriteBinary and rebuilds
// the full graph, validating CSR invariants before returning it.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := binio.NewReader(r)
	if v := br.U8(); br.Err() == nil && v != graphBinaryVersion {
		return nil, fmt.Errorf("graph: unsupported binary version %d", v)
	}
	g := &Graph{}
	g.n = br.I32()
	g.outOff = br.I32s()
	g.outDst = br.I32s()
	if hasNames := br.U8(); br.Err() == nil && hasNames == 1 {
		g.names = br.Strs()
	}
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("graph: read binary: %w", err)
	}
	if g.n < 0 || len(g.outOff) != int(g.n)+1 {
		return nil, fmt.Errorf("graph: binary payload has %d offsets for %d nodes", len(g.outOff), g.n)
	}
	if g.names != nil && len(g.names) != int(g.n) {
		return nil, fmt.Errorf("graph: binary payload has %d names for %d nodes", len(g.names), g.n)
	}
	m := len(g.outDst)
	if g.outOff[0] != 0 || g.outOff[g.n] != int32(m) {
		return nil, fmt.Errorf("graph: binary payload offsets span [%d,%d] for %d edges",
			g.outOff[0], g.outOff[g.n], m)
	}
	for u := int32(0); u < g.n; u++ {
		if g.outOff[u] > g.outOff[u+1] {
			return nil, fmt.Errorf("graph: binary payload offsets not monotone at node %d", u)
		}
	}
	// Rebuild the reverse adjacency with a counting pass.
	g.inOff = make([]int32, g.n+1)
	g.inSrc = make([]NodeID, m)
	g.inEdge = make([]EdgeID, m)
	for _, v := range g.outDst {
		if v < 0 || v >= g.n {
			return nil, fmt.Errorf("graph: binary payload edge destination %d out of range", v)
		}
		g.inOff[v+1]++
	}
	for i := int32(0); i < g.n; i++ {
		g.inOff[i+1] += g.inOff[i]
	}
	cursor := make([]int32, g.n)
	copy(cursor, g.inOff[:g.n])
	for u := int32(0); u < g.n; u++ {
		for e := g.outOff[u]; e < g.outOff[u+1]; e++ {
			v := g.outDst[e]
			slot := cursor[v]
			cursor[v]++
			g.inSrc[slot] = u
			g.inEdge[slot] = e
		}
	}
	if g.names != nil {
		g.nameIdx = make(map[string]NodeID, g.n)
		for i, nm := range g.names {
			if nm != "" {
				g.nameIdx[nm] = NodeID(i)
			}
		}
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("graph: binary payload invalid: %w", err)
	}
	return g, nil
}
