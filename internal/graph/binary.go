package graph

import (
	"fmt"
	"io"

	"octopus/internal/arena"
	"octopus/internal/binio"
)

// Binary payload format. Version 2 lays every CSR array on an 8-byte
// boundary (relative to the payload start) and serializes the reverse
// adjacency explicitly, so a zero-copy reader can alias all five
// arrays straight out of a mapped snapshot section without the O(m)
// counting rebuild. Version 1 (forward arrays only, reverse rebuilt on
// load) is still read for old snapshots.
const (
	graphBinaryVersion   = 2
	graphBinaryVersionV1 = 1
)

// WriteBinary serializes g's CSR representation in the current
// (aligned, version 2) format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := binio.NewWriter(w)
	bw.U8(graphBinaryVersion)
	bw.I32(g.n)
	bw.Align8()
	bw.I32s(g.outOff)
	bw.Align8()
	bw.I32s(g.outDst)
	bw.Align8()
	bw.I32s(g.inOff)
	bw.Align8()
	bw.I32s(g.inSrc)
	bw.Align8()
	bw.I32s(g.inEdge)
	if g.names != nil {
		bw.U8(1)
		bw.Strs(g.names)
	} else {
		bw.U8(0)
	}
	return bw.Flush()
}

// WriteBinaryV1 emits the legacy version-1 payload (forward CSR only,
// unaligned). Kept for the cross-version compatibility tests and for
// downgrade tooling.
func WriteBinaryV1(w io.Writer, g *Graph) error {
	bw := binio.NewWriter(w)
	bw.U8(graphBinaryVersionV1)
	bw.I32(g.n)
	bw.I32s(g.outOff)
	bw.I32s(g.outDst)
	if g.names != nil {
		bw.U8(1)
		bw.Strs(g.names)
	} else {
		bw.U8(0)
	}
	return bw.Flush()
}

// ReadBinary parses a payload produced by WriteBinary (any version)
// from a stream, always copying onto the heap.
func ReadBinary(r io.Reader) (*Graph, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("graph: read binary: %w", err)
	}
	return ReadView(arena.NewReader(data))
}

// ReadView parses a binary payload through an arena reader. In
// zero-copy mode the five CSR arrays alias the reader's backing bytes
// (the caller keeps them alive) and the O(m) content revalidation is
// skipped in favor of shape checks — mapped snapshots were CRC-framed
// when written; only name index maps are built on the heap.
func ReadView(br *arena.Reader) (*Graph, error) {
	version := br.U8()
	if br.Err() == nil && version != graphBinaryVersion && version != graphBinaryVersionV1 {
		return nil, fmt.Errorf("graph: unsupported binary version %d", version)
	}
	g := &Graph{}
	g.n = br.I32()
	switch version {
	case graphBinaryVersionV1:
		g.outOff = br.I32s()
		g.outDst = br.I32s()
	default:
		br.Align8()
		g.outOff = br.I32s()
		br.Align8()
		g.outDst = br.I32s()
		br.Align8()
		g.inOff = br.I32s()
		br.Align8()
		g.inSrc = br.I32s()
		br.Align8()
		g.inEdge = br.I32s()
	}
	if hasNames := br.U8(); br.Err() == nil && hasNames == 1 {
		g.names = br.Strs()
	}
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("graph: read binary: %w", err)
	}
	if g.n < 0 || len(g.outOff) != int(g.n)+1 {
		return nil, fmt.Errorf("graph: binary payload has %d offsets for %d nodes", len(g.outOff), g.n)
	}
	if g.names != nil && len(g.names) != int(g.n) {
		return nil, fmt.Errorf("graph: binary payload has %d names for %d nodes", len(g.names), g.n)
	}
	m := len(g.outDst)
	if err := checkOffsets("out", g.outOff, g.n, m); err != nil {
		return nil, err
	}
	if version == graphBinaryVersionV1 {
		if err := g.rebuildReverse(); err != nil {
			return nil, err
		}
	} else {
		if len(g.inOff) != int(g.n)+1 || len(g.inSrc) != m || len(g.inEdge) != m {
			return nil, fmt.Errorf("graph: binary payload reverse arrays sized %d/%d/%d for %d nodes, %d edges",
				len(g.inOff), len(g.inSrc), len(g.inEdge), g.n, m)
		}
		if err := checkOffsets("in", g.inOff, g.n, m); err != nil {
			return nil, err
		}
	}
	if g.names != nil {
		g.nameIdx = make(map[string]NodeID, g.n)
		for i, nm := range g.names {
			if nm != "" {
				g.nameIdx[nm] = NodeID(i)
			}
		}
	}
	// Zero-copy input is a snapshot we (or a peer replica) wrote and
	// framed with CRCs: the per-edge content validation would fault in
	// every page of a mapped file, defeating the lazy cold start, so it
	// only runs on the copying path.
	if !br.ZeroCopy() {
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("graph: binary payload invalid: %w", err)
		}
	}
	return g, nil
}

// checkOffsets validates a CSR offset array's shape: [0,m] span and
// monotone throughout. O(n) over the offsets only, never the edges.
func checkOffsets(kind string, off []int32, n int32, m int) error {
	if off[0] != 0 || off[n] != int32(m) {
		return fmt.Errorf("graph: binary payload %s-offsets span [%d,%d] for %d edges", kind, off[0], off[n], m)
	}
	for u := int32(0); u < n; u++ {
		if off[u] > off[u+1] {
			return fmt.Errorf("graph: binary payload %s-offsets not monotone at node %d", kind, u)
		}
	}
	return nil
}

// rebuildReverse reconstructs the reverse adjacency with a counting
// pass — the version-1 load path.
func (g *Graph) rebuildReverse() error {
	m := len(g.outDst)
	g.inOff = make([]int32, g.n+1)
	g.inSrc = make([]NodeID, m)
	g.inEdge = make([]EdgeID, m)
	for _, v := range g.outDst {
		if v < 0 || v >= g.n {
			return fmt.Errorf("graph: binary payload edge destination %d out of range", v)
		}
		g.inOff[v+1]++
	}
	for i := int32(0); i < g.n; i++ {
		g.inOff[i+1] += g.inOff[i]
	}
	cursor := make([]int32, g.n)
	copy(cursor, g.inOff[:g.n])
	for u := int32(0); u < g.n; u++ {
		for e := g.outOff[u]; e < g.outOff[u+1]; e++ {
			v := g.outDst[e]
			slot := cursor[v]
			cursor[v]++
			g.inSrc[slot] = u
			g.inEdge[slot] = e
		}
	}
	return nil
}
