package qcache

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func entry(body string) *Entry {
	return &Entry{Status: http.StatusOK, Header: http.Header{}, Body: []byte(body)}
}

func TestCacheHitMissStale(t *testing.T) {
	c := New(4)
	if _, out := c.Get("a", 1); out != Miss {
		t.Fatalf("empty cache outcome = %v, want Miss", out)
	}
	c.Put("a", 1, entry("v1"))
	e, out := c.Get("a", 1)
	if out != Hit || string(e.Body) != "v1" {
		t.Fatalf("Get = %v/%q, want Hit/v1", out, e.Body)
	}
	// Generation bump: entry is stale and evicted.
	if _, out := c.Get("a", 2); out != Stale {
		t.Fatalf("stale outcome = %v, want Stale", out)
	}
	if _, out := c.Get("a", 2); out != Miss {
		t.Fatalf("post-stale outcome = %v, want Miss (entry evicted)", out)
	}
	// Re-Put at the new generation replaces cleanly.
	c.Put("a", 2, entry("v2"))
	if e, out := c.Get("a", 2); out != Hit || string(e.Body) != "v2" {
		t.Fatalf("Get after re-put = %v/%q", out, e.Body)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := New(3)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), 1, entry("v"))
	}
	// Touch k0 so k1 is the LRU victim.
	if _, out := c.Get("k0", 1); out != Hit {
		t.Fatal("k0 should hit")
	}
	c.Put("k3", 1, entry("v"))
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
	if _, out := c.Get("k1", 1); out != Miss {
		t.Fatalf("k1 outcome = %v, want Miss (evicted)", out)
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, out := c.Get(k, 1); out != Hit {
			t.Fatalf("%s outcome = %v, want Hit", k, out)
		}
	}
}

// TestCachePutNeverRegressesGeneration: a straggler leader that pinned
// an old snapshot must not replace the entry the current generation
// already recomputed.
func TestCachePutNeverRegressesGeneration(t *testing.T) {
	c := New(4)
	c.Put("k", 2, entry("fresh"))
	c.Put("k", 1, entry("straggler"))
	e, out := c.Get("k", 2)
	if out != Hit || string(e.Body) != "fresh" {
		t.Fatalf("Get = %v/%q, want Hit/fresh", out, e.Body)
	}
	// Equal or newer generations still replace.
	c.Put("k", 2, entry("fresh2"))
	if e, _ := c.Get("k", 2); string(e.Body) != "fresh2" {
		t.Fatalf("same-generation Put did not replace: %q", e.Body)
	}
	c.Put("k", 3, entry("newer"))
	if e, out := c.Get("k", 3); out != Hit || string(e.Body) != "newer" {
		t.Fatalf("newer-generation Put = %v/%q", out, e.Body)
	}
}

func TestCachePutReplaces(t *testing.T) {
	c := New(2)
	c.Put("a", 1, entry("old"))
	c.Put("a", 1, entry("new"))
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if e, _ := c.Get("a", 1); string(e.Body) != "new" {
		t.Fatalf("Body = %q", e.Body)
	}
}

func TestFlightCoalesces(t *testing.T) {
	var f Flight
	var runs atomic.Int64
	release := make(chan struct{})
	started := make(chan struct{})

	const n = 8
	results := make([]*Entry, n)
	shared := make([]bool, n)
	var wg sync.WaitGroup
	// Leader.
	wg.Add(1)
	go func() {
		defer wg.Done()
		results[0], shared[0] = f.Do("k", func() *Entry {
			runs.Add(1)
			close(started)
			<-release
			return entry("leader")
		})
	}()
	<-started
	// Followers join while the leader is in flight.
	for i := 1; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], shared[i] = f.Do("k", func() *Entry {
				runs.Add(1)
				return entry("follower")
			})
		}(i)
	}
	// Give followers a moment to park on the call, then release.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := runs.Load(); got != 1 {
		t.Fatalf("fn ran %d times, want 1", got)
	}
	for i := 0; i < n; i++ {
		if string(results[i].Body) != "leader" {
			t.Fatalf("result[%d] = %q", i, results[i].Body)
		}
		if i > 0 && !shared[i] {
			t.Fatalf("follower %d not marked shared", i)
		}
	}
	if shared[0] {
		t.Fatal("leader marked shared")
	}
	// After completion a fresh Do runs fn again.
	e, sh := f.Do("k", func() *Entry { runs.Add(1); return entry("fresh") })
	if sh || string(e.Body) != "fresh" || runs.Load() != 2 {
		t.Fatalf("post-completion Do = %q shared=%v runs=%d", e.Body, sh, runs.Load())
	}
}

// TestFlightLeaderPanicDoesNotWedgeKey: a panicking leader must retire
// the key and release waiters (with a nil result), never leave them
// blocked forever.
func TestFlightLeaderPanicDoesNotWedgeKey(t *testing.T) {
	var f Flight
	inFlight := make(chan struct{})
	release := make(chan struct{})
	waiterDone := make(chan *Entry, 1)

	go func() {
		defer func() { _ = recover() }()
		f.Do("k", func() *Entry {
			close(inFlight)
			<-release
			panic("engine exploded")
		})
	}()
	<-inFlight
	go func() {
		e, _ := f.Do("k", func() *Entry { return entry("should not run") })
		waiterDone <- e
	}()
	time.Sleep(10 * time.Millisecond) // let the waiter park on the call
	close(release)
	if e := <-waiterDone; e != nil && string(e.Body) == "should not run" {
		t.Fatal("waiter ran its own fn while coalesced onto the leader")
	}
	// The key must be usable again.
	e, shared := f.Do("k", func() *Entry { return entry("recovered") })
	if shared || string(e.Body) != "recovered" {
		t.Fatalf("post-panic Do = %q shared=%v", e.Body, shared)
	}
}

func TestFlightDistinctKeysRunIndependently(t *testing.T) {
	var f Flight
	var runs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f.Do(fmt.Sprintf("k%d", i), func() *Entry {
				runs.Add(1)
				return entry("v")
			})
		}(i)
	}
	wg.Wait()
	if runs.Load() != 4 {
		t.Fatalf("runs = %d, want 4", runs.Load())
	}
}

func TestGate(t *testing.T) {
	g := NewGate(2)
	if g.Capacity() != 2 {
		t.Fatalf("Capacity = %d", g.Capacity())
	}
	if !g.TryAcquire() || !g.TryAcquire() {
		t.Fatal("first two acquisitions must succeed")
	}
	if g.TryAcquire() {
		t.Fatal("third acquisition must fail")
	}
	if g.InFlight() != 2 {
		t.Fatalf("InFlight = %d", g.InFlight())
	}
	g.Release()
	if !g.TryAcquire() {
		t.Fatal("acquisition after release must succeed")
	}
	g.Release()
	g.Release()
	if g.InFlight() != 0 {
		t.Fatalf("InFlight after drain = %d", g.InFlight())
	}
}

func TestNilGateUnlimited(t *testing.T) {
	g := NewGate(0)
	if g != nil {
		t.Fatal("capacity 0 must return nil (unlimited)")
	}
	for i := 0; i < 100; i++ {
		if !g.TryAcquire() {
			t.Fatal("nil gate must always admit")
		}
	}
	g.Release() // must not panic
	if g.InFlight() != 0 || g.Capacity() != 0 {
		t.Fatal("nil gate reports zero usage")
	}
}

func TestMetricsCountersAndQuantiles(t *testing.T) {
	m := NewMetrics()
	// 90 fast (1ms) + 10 slow (100ms) observations: p50 must sit near
	// 1ms, p99 near 100ms (within the histogram's 2× bucket error).
	for i := 0; i < 90; i++ {
		m.Observe("im", StateHit, 200, time.Millisecond)
	}
	for i := 0; i < 10; i++ {
		m.Observe("im", StateMiss, 200, 100*time.Millisecond)
	}
	m.StaleEvict("im")
	m.Observe("im", StateStale, 200, time.Millisecond)
	m.Observe("im", StateCoalesced, 429, time.Millisecond)
	m.Shed("im")
	m.Observe("im", StateShed, 429, time.Millisecond)
	m.Observe("suggest", StateBypass, 404, time.Millisecond)

	rep := m.Report()
	im := rep.Endpoints["im"]
	if im.Count != 103 {
		t.Fatalf("im count = %d", im.Count)
	}
	if im.Hits != 90 || im.Misses != 11 || im.Stale != 1 || im.Coalesced != 1 || im.Shed != 1 {
		t.Fatalf("im cache counters = %+v", im)
	}
	if im.Errors != 2 {
		t.Fatalf("im errors = %d", im.Errors)
	}
	if im.P50Ms < 0.4 || im.P50Ms > 3 {
		t.Fatalf("p50 = %.3fms, want ≈1ms", im.P50Ms)
	}
	if im.P99Ms < 50 || im.P99Ms > 200 {
		t.Fatalf("p99 = %.3fms, want ≈100ms", im.P99Ms)
	}
	if im.MaxMs < 99 || im.MaxMs > 201 {
		t.Fatalf("max = %.3fms", im.MaxMs)
	}
	if sg := rep.Endpoints["suggest"]; sg.Count != 1 || sg.Errors != 1 {
		t.Fatalf("suggest = %+v", sg)
	}
	if rep.Requests != 104 || rep.Shed != 1 {
		t.Fatalf("totals = %d req / %d shed", rep.Requests, rep.Shed)
	}
	if len(rep.EndpointNames) != 2 || rep.EndpointNames[0] != "im" {
		t.Fatalf("endpoint names = %v", rep.EndpointNames)
	}
}

func TestMetricsEmptyReport(t *testing.T) {
	rep := NewMetrics().Report()
	if rep.Requests != 0 || len(rep.Endpoints) != 0 {
		t.Fatalf("empty report = %+v", rep)
	}
}

func TestRetryAfterSecondsDerived(t *testing.T) {
	m := NewMetrics()
	// No observations yet: the floor.
	if got := m.RetryAfterSeconds("im"); got != 1 {
		t.Fatalf("cold retry-after = %d, want 1", got)
	}
	// A fast endpoint stays at the 1s floor.
	for i := 0; i < 100; i++ {
		m.Observe("im", StateMiss, 200, 5*time.Millisecond)
	}
	if got := m.RetryAfterSeconds("im"); got != 1 {
		t.Fatalf("fast retry-after = %d, want 1", got)
	}
	// A slow endpoint pushes clients out ≈ its p99, rounded up.
	for i := 0; i < 100; i++ {
		m.Observe("slow", StateMiss, 200, 2500*time.Millisecond)
	}
	if got := m.RetryAfterSeconds("slow"); got != 3 {
		t.Fatalf("slow retry-after = %d, want 3 (⌈2.5s⌉)", got)
	}
	// Pathological latencies are capped so the hint stays actionable.
	m.Observe("stuck", StateMiss, 200, 10*time.Minute)
	if got := m.RetryAfterSeconds("stuck"); got != 60 {
		t.Fatalf("capped retry-after = %d, want 60", got)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := New(64)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", i%100)
				gen := uint64(1 + i%3)
				if e, out := c.Get(k, gen); out == Hit && len(e.Body) == 0 {
					t.Error("hit with empty body")
					return
				}
				c.Put(k, gen, entry("v"))
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 64 {
		t.Fatalf("Len = %d exceeds bound", c.Len())
	}
}
