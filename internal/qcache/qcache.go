// Package qcache is the query-serving layer of the OCTOPUS server: the
// machinery that lets an *online* influence-analysis system answer the
// same popular questions many times without redoing the work, and stay
// up when the offered load exceeds what the engines can absorb.
//
// It provides four pieces, composed by internal/server:
//
//   - Cache: a bounded LRU of rendered query responses, each entry
//     tagged with the serving snapshot's generation. A lookup hits only
//     when the entry's generation matches the current one, so a snapshot
//     swap invalidates every cached answer implicitly — no flush, no
//     epoch walk, stale entries simply die on their next touch or fall
//     off the LRU tail.
//
//   - Flight: request coalescing (singleflight). Concurrent identical
//     misses share one engine run; followers block until the leader's
//     response is rendered and then reuse its bytes.
//
//   - Gate: a semaphore admission controller. Query work acquires a
//     slot before running an engine; when all slots are taken the
//     request is shed immediately (the server answers 429 + Retry-After)
//     instead of queueing unboundedly.
//
//   - Metrics: per-endpoint request counters, cache hit/miss/stale and
//     shed counts, and latency histograms with quantile estimation —
//     the payload behind GET /api/metrics.
//
// The package is deliberately value-agnostic: an Entry is a rendered
// HTTP response (status + headers + body bytes), so a cache hit is
// byte-identical to the miss that produced it.
package qcache

import (
	"container/list"
	"math"
	"net/http"
	"sort"
	"sync"
	"time"

	"octopus/internal/obs"
)

// Entry is one rendered response: what the handler wrote, replayable
// verbatim. Body and Header must be treated as immutable once stored.
type Entry struct {
	Status int
	Header http.Header
	Body   []byte
}

// Outcome classifies a cache lookup.
type Outcome int

const (
	// Miss: no entry under the key.
	Miss Outcome = iota
	// Hit: an entry with the current generation.
	Hit
	// Stale: an entry existed but was built against an older generation;
	// it has been evicted and the caller must recompute.
	Stale
)

// Cache is a bounded, generation-aware LRU of rendered responses. Safe
// for concurrent use.
type Cache struct {
	mu      sync.Mutex
	max     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
}

type cacheItem struct {
	key   string
	gen   uint64
	entry *Entry
}

// New creates a cache bounded to maxEntries (minimum 1).
func New(maxEntries int) *Cache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	return &Cache{
		max:     maxEntries,
		ll:      list.New(),
		entries: make(map[string]*list.Element),
	}
}

// Get looks the key up against the given generation. A generation
// mismatch evicts the entry and reports Stale — the snapshot the answer
// was computed from is no longer the one being served.
func (c *Cache) Get(key string, gen uint64) (*Entry, Outcome) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		return nil, Miss
	}
	it := el.Value.(*cacheItem)
	if it.gen != gen {
		c.ll.Remove(el)
		delete(c.entries, key)
		return nil, Stale
	}
	c.ll.MoveToFront(el)
	return it.entry, Hit
}

// Put stores an entry under key for the given generation, replacing any
// existing entry and evicting from the LRU tail past the bound. A
// straggler from an older generation never regresses a newer entry — a
// slow pre-swap leader finishing after the swap must not de-cache the
// hot key the current generation already recomputed.
func (c *Cache) Put(key string, gen uint64, e *Entry) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		it := el.Value.(*cacheItem)
		if it.gen > gen {
			return
		}
		it.gen, it.entry = gen, e
		c.ll.MoveToFront(el)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheItem{key: key, gen: gen, entry: e})
	for c.ll.Len() > c.max {
		tail := c.ll.Back()
		c.ll.Remove(tail)
		delete(c.entries, tail.Value.(*cacheItem).key)
	}
}

// Len reports the current number of entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Flight coalesces concurrent calls that share a key: the first caller
// (the leader) runs fn, everyone else blocks and reuses its result. The
// zero value is ready to use. Keys should incorporate the generation so
// a leader from before a swap is never joined after it.
type Flight struct {
	mu sync.Mutex
	m  map[string]*flightCall
}

type flightCall struct {
	wg  sync.WaitGroup
	val *Entry
}

// Do runs fn under the key, coalescing with an in-flight identical
// call. The second return reports whether the result was shared from
// another caller's run. If the leader's fn panics, the panic
// propagates to the leader, the key is retired, and waiters receive a
// nil Entry — a key must never stay wedged past the panic (the HTTP
// server recovers handler panics, so the process outlives them).
func (f *Flight) Do(key string, fn func() *Entry) (*Entry, bool) {
	f.mu.Lock()
	if f.m == nil {
		f.m = make(map[string]*flightCall)
	}
	if c, ok := f.m[key]; ok {
		f.mu.Unlock()
		c.wg.Wait()
		return c.val, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	f.m[key] = c
	f.mu.Unlock()

	defer func() {
		f.mu.Lock()
		delete(f.m, key)
		f.mu.Unlock()
		c.wg.Done()
	}()
	c.val = fn()
	return c.val, false
}

// Gate is a semaphore admission controller: at most capacity units of
// query work run concurrently; excess work is refused immediately, never
// queued. A nil Gate admits everything.
type Gate struct {
	slots chan struct{}
}

// NewGate creates a gate admitting capacity concurrent acquisitions.
// capacity <= 0 returns nil — an unlimited gate.
func NewGate(capacity int) *Gate {
	if capacity <= 0 {
		return nil
	}
	return &Gate{slots: make(chan struct{}, capacity)}
}

// TryAcquire claims a slot without blocking, reporting success.
func (g *Gate) TryAcquire() bool {
	if g == nil {
		return true
	}
	select {
	case g.slots <- struct{}{}:
		return true
	default:
		return false
	}
}

// Release returns a slot claimed by TryAcquire.
func (g *Gate) Release() {
	if g != nil {
		<-g.slots
	}
}

// InFlight reports the currently claimed slots (0 for a nil gate).
func (g *Gate) InFlight() int {
	if g == nil {
		return 0
	}
	return len(g.slots)
}

// Capacity reports the slot bound (0 = unlimited).
func (g *Gate) Capacity() int {
	if g == nil {
		return 0
	}
	return cap(g.slots)
}

// ---- Metrics ----

// Latencies use obs.Histogram: power-of-two buckets over nanoseconds
// with linear interpolation inside a bucket — coarse but constant-size
// and mergeable, which is all /api/metrics and Retry-After need. Exact
// client-side percentiles belong to the bench harness; the same
// histograms feed the Prometheus exposition through Collect.
type endpointStats struct {
	count     uint64
	errors    uint64 // responses with status >= 400
	hits      uint64
	misses    uint64
	stale     uint64
	coalesced uint64
	shed      uint64
	lat       obs.Histogram
}

// Metrics aggregates per-endpoint serving statistics. Safe for
// concurrent use; the zero value is not ready — use NewMetrics.
type Metrics struct {
	mu        sync.Mutex
	start     time.Time
	endpoints map[string]*endpointStats
}

// NewMetrics creates an empty metrics registry.
func NewMetrics() *Metrics {
	return &Metrics{start: time.Now(), endpoints: make(map[string]*endpointStats)}
}

func (m *Metrics) get(endpoint string) *endpointStats {
	s, ok := m.endpoints[endpoint]
	if !ok {
		s = &endpointStats{}
		m.endpoints[endpoint] = s
	}
	return s
}

// CacheState is how a response was produced, for the per-endpoint cache
// counters and the X-Octopus-Cache response header.
type CacheState string

const (
	// StateHit: served from the cache at the current generation.
	StateHit CacheState = "hit"
	// StateMiss: computed by this request's own engine run.
	StateMiss CacheState = "miss"
	// StateStale: computed after evicting an entry from an older
	// generation — the invalidation path a snapshot swap triggers. The
	// stale counter itself is advanced by StaleEvict at eviction time
	// (the request may still end up coalesced or shed); Observe treats
	// StateStale as a miss.
	StateStale CacheState = "stale"
	// StateCoalesced: reused from a concurrent identical request's run.
	StateCoalesced CacheState = "coalesced"
	// StateShed: refused by the admission gate (429). The shed counter
	// is advanced by Shed when the gate refuses; Observe only records
	// the request itself.
	StateShed CacheState = "shed"
	// StateBypass: endpoint does not participate in caching.
	StateBypass CacheState = "bypass"
)

// Observe records one served response.
func (m *Metrics) Observe(endpoint string, state CacheState, status int, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.get(endpoint)
	s.count++
	if status >= 400 {
		s.errors++
	}
	switch state {
	case StateHit:
		s.hits++
	case StateMiss, StateStale:
		s.misses++
	case StateCoalesced:
		s.coalesced++
	}
	s.lat.Observe(d)
}

// Shed records one admission-control rejection for the endpoint.
func (m *Metrics) Shed(endpoint string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.get(endpoint).shed++
}

// StaleEvict records one generation-mismatch eviction for the endpoint.
func (m *Metrics) StaleEvict(endpoint string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.get(endpoint).stale++
}

// RetryAfterSeconds derives a shed-response backoff hint from the
// endpoint's observed service time: the live p99 latency (never below
// the p50), rounded up to whole seconds, floored at 1s and capped at
// 60s. A fast endpoint tells shed clients to come back in a second; a
// slow one pushes them out proportionally to how long its answers
// actually take, so retries land when a slot is plausibly free.
func (m *Metrics) RetryAfterSeconds(endpoint string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.endpoints[endpoint]
	if !ok {
		return 1
	}
	p99 := s.lat.Quantile(0.99)
	secs := int(math.Ceil(p99 / 1e9))
	switch {
	case secs < 1:
		return 1
	case secs > 60:
		return 60
	default:
		return secs
	}
}

// EndpointSnapshot is the JSON-ready per-endpoint report.
type EndpointSnapshot struct {
	Count     uint64 `json:"count"`
	Errors    uint64 `json:"errors"`
	Hits      uint64 `json:"cacheHits"`
	Misses    uint64 `json:"cacheMisses"`
	Stale     uint64 `json:"cacheStale"`
	Coalesced uint64 `json:"coalesced"`
	Shed      uint64 `json:"shed"`
	// HitRatio and ShedRatio are derived directly (hits/count and
	// shed/count, 0 when no requests were seen), so dashboards don't
	// re-divide raw counters.
	HitRatio  float64 `json:"cacheHitRatio"`
	ShedRatio float64 `json:"shedRatio"`
	MeanMs    float64 `json:"meanMillis"`
	P50Ms     float64 `json:"p50Millis"`
	P99Ms     float64 `json:"p99Millis"`
	MaxMs     float64 `json:"maxMillis"`
}

// Snapshot is the JSON-ready full metrics report.
type Snapshot struct {
	UptimeSeconds float64 `json:"uptimeSeconds"`
	Requests      uint64  `json:"requests"`
	Shed          uint64  `json:"shed"`
	// HitRatio and ShedRatio aggregate across all endpoints (0 when no
	// requests were seen).
	HitRatio  float64                     `json:"cacheHitRatio"`
	ShedRatio float64                     `json:"shedRatio"`
	Endpoints map[string]EndpointSnapshot `json:"endpoints"`
	// EndpointNames lists the endpoints sorted, so renderers have a
	// stable iteration order.
	EndpointNames []string `json:"endpointNames"`
}

// Report renders a point-in-time snapshot of every endpoint's counters.
func (m *Metrics) Report() Snapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := Snapshot{
		UptimeSeconds: time.Since(m.start).Seconds(),
		Endpoints:     make(map[string]EndpointSnapshot, len(m.endpoints)),
	}
	for name, s := range m.endpoints {
		lat := s.lat.Snapshot()
		ep := EndpointSnapshot{
			Count:     s.count,
			Errors:    s.errors,
			Hits:      s.hits,
			Misses:    s.misses,
			Stale:     s.stale,
			Coalesced: s.coalesced,
			Shed:      s.shed,
			P50Ms:     lat.Quantile(0.50) / 1e6,
			P99Ms:     lat.Quantile(0.99) / 1e6,
			MaxMs:     float64(lat.MaxNs) / 1e6,
		}
		if s.count > 0 {
			ep.MeanMs = float64(lat.SumNs) / float64(s.count) / 1e6
			ep.HitRatio = float64(s.hits) / float64(s.count)
			ep.ShedRatio = float64(s.shed) / float64(s.count)
		}
		out.Endpoints[name] = ep
		out.EndpointNames = append(out.EndpointNames, name)
		out.Requests += s.count
		out.Shed += s.shed
		out.HitRatio += float64(s.hits)
	}
	if out.Requests > 0 {
		out.HitRatio /= float64(out.Requests)
		out.ShedRatio = float64(out.Shed) / float64(out.Requests)
	} else {
		out.HitRatio = 0
	}
	sort.Strings(out.EndpointNames)
	return out
}

// Collect writes the per-endpoint serving counters and latency
// histograms into a Prometheus scrape — the same numbers /api/metrics
// reports as JSON, under stable metric names. Register a Metrics on an
// obs.Registry to expose them.
func (m *Metrics) Collect(w *obs.MetricWriter) {
	m.mu.Lock()
	names := make([]string, 0, len(m.endpoints))
	for name := range m.endpoints {
		names = append(names, name)
	}
	sort.Strings(names)
	type row struct {
		name                                                string
		count, errors, hits, misses, stale, coalesced, shed uint64
		lat                                                 obs.HistSnapshot
	}
	rows := make([]row, 0, len(names))
	for _, name := range names {
		s := m.endpoints[name]
		rows = append(rows, row{
			name: name, count: s.count, errors: s.errors, hits: s.hits,
			misses: s.misses, stale: s.stale, coalesced: s.coalesced,
			shed: s.shed, lat: s.lat.Snapshot(),
		})
	}
	m.mu.Unlock()

	for _, r := range rows {
		l := []string{"endpoint", r.name}
		w.Counter("octopus_requests_total", "Requests served, by endpoint.", float64(r.count), l...)
		w.Counter("octopus_request_errors_total", "Responses with status >= 400, by endpoint.", float64(r.errors), l...)
		w.Counter("octopus_cache_hits_total", "Cache hits at the current generation, by endpoint.", float64(r.hits), l...)
		w.Counter("octopus_cache_misses_total", "Cache misses (including stale recomputes), by endpoint.", float64(r.misses), l...)
		w.Counter("octopus_cache_stale_evictions_total", "Generation-mismatch evictions, by endpoint.", float64(r.stale), l...)
		w.Counter("octopus_coalesced_total", "Requests served from a concurrent identical run, by endpoint.", float64(r.coalesced), l...)
		w.Counter("octopus_shed_total", "Requests refused by the admission gate (429), by endpoint.", float64(r.shed), l...)
		w.Histogram("octopus_request_duration_seconds", "Request latency, by endpoint.", r.lat, l...)
	}
}
