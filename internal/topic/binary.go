package topic

import (
	"fmt"
	"io"

	"octopus/internal/binio"
)

// Binary payload format (version 1): vocabulary, per-topic keyword
// rows, prior and optional topic names. Probabilities round-trip
// exactly (raw float64 bits), so a model loaded from a snapshot infers
// byte-identical γ distributions.
const topicBinaryVersion = 1

// WriteBinary serializes the keyword/topic model.
func WriteBinary(w io.Writer, m *Model) error {
	bw := binio.NewWriter(w)
	bw.U8(topicBinaryVersion)
	bw.U32(uint32(m.z))
	bw.Strs(m.vocab)
	bw.F64s(m.prior)
	for _, row := range m.pwz {
		bw.F64s(row)
	}
	if m.topicNames != nil {
		bw.U8(1)
		bw.Strs(m.topicNames)
	} else {
		bw.U8(0)
	}
	return bw.Flush()
}

// ReadBinary parses the payload produced by WriteBinary. The model is
// reassembled directly (no re-normalization), so probabilities are
// bit-identical to the serialized model's.
func ReadBinary(r io.Reader) (*Model, error) {
	br := binio.NewReader(r)
	if v := br.U8(); br.Err() == nil && v != topicBinaryVersion {
		return nil, fmt.Errorf("topic: unsupported binary version %d", v)
	}
	z := int(br.U32())
	if br.Err() == nil && (z <= 0 || z > 1<<16) {
		return nil, fmt.Errorf("topic: binary payload topic count %d out of range", z)
	}
	vocab := br.Strs()
	prior := Dist(br.F64s())
	pwz := make([][]float64, 0, z)
	if br.Err() == nil {
		for zi := 0; zi < z; zi++ {
			pwz = append(pwz, br.F64s())
		}
	}
	var names []string
	if hasNames := br.U8(); br.Err() == nil && hasNames == 1 {
		names = br.Strs()
	}
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("topic: read binary: %w", err)
	}
	if len(vocab) == 0 {
		return nil, fmt.Errorf("topic: binary payload has empty vocabulary")
	}
	if len(prior) != z {
		return nil, fmt.Errorf("topic: binary payload prior has %d entries for %d topics", len(prior), z)
	}
	m := &Model{
		vocab:   vocab,
		vocabID: make(map[string]int, len(vocab)),
		z:       z,
		pwz:     pwz,
		prior:   prior,
	}
	for i, w := range vocab {
		if w == "" {
			return nil, fmt.Errorf("topic: binary payload empty keyword at index %d", i)
		}
		if _, dup := m.vocabID[w]; dup {
			return nil, fmt.Errorf("topic: binary payload duplicate keyword %q", w)
		}
		m.vocabID[w] = i
	}
	for zi, row := range pwz {
		if len(row) != len(vocab) {
			return nil, fmt.Errorf("topic: binary payload row %d has %d entries for %d keywords",
				zi, len(row), len(vocab))
		}
		for wi, p := range row {
			if !(p >= 0 && p <= 1) { // also rejects NaN
				return nil, fmt.Errorf("topic: binary payload p(w|z)[%d][%d] = %v invalid", zi, wi, p)
			}
		}
	}
	if err := prior.Validate(); err != nil {
		return nil, fmt.Errorf("topic: binary payload prior: %w", err)
	}
	if names != nil {
		if err := m.SetTopicNames(names); err != nil {
			return nil, fmt.Errorf("topic: binary payload: %w", err)
		}
	}
	return m, nil
}
