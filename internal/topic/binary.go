package topic

import (
	"fmt"
	"io"

	"octopus/internal/arena"
	"octopus/internal/binio"
)

// Binary payload format. Version 2 stores the per-topic keyword rows
// as one contiguous 8-aligned pool of z×|V| float64s, so a zero-copy
// reader aliases the whole probability table out of a mapped snapshot
// and the in-memory rows become subslices of it. Version 1 (one array
// per row, unaligned) is still read for old snapshots. Probabilities
// round-trip exactly (raw float64 bits) in both versions, so a model
// loaded from a snapshot infers byte-identical γ distributions.
const (
	topicBinaryVersion   = 2
	topicBinaryVersionV1 = 1
)

// WriteBinary serializes the keyword/topic model in the current
// (aligned, version 2) format.
func WriteBinary(w io.Writer, m *Model) error {
	bw := binio.NewWriter(w)
	bw.U8(topicBinaryVersion)
	bw.U32(uint32(m.z))
	bw.Strs(m.vocab)
	bw.Align8()
	bw.F64s(m.prior)
	bw.Align8()
	bw.U64(uint64(m.z) * uint64(len(m.vocab)))
	for _, row := range m.pwz {
		for _, p := range row {
			bw.F64(p)
		}
	}
	if m.topicNames != nil {
		bw.U8(1)
		bw.Strs(m.topicNames)
	} else {
		bw.U8(0)
	}
	return bw.Flush()
}

// WriteBinaryV1 emits the legacy version-1 payload, kept for the
// cross-version compatibility tests and downgrade tooling.
func WriteBinaryV1(w io.Writer, m *Model) error {
	bw := binio.NewWriter(w)
	bw.U8(topicBinaryVersionV1)
	bw.U32(uint32(m.z))
	bw.Strs(m.vocab)
	bw.F64s(m.prior)
	for _, row := range m.pwz {
		bw.F64s(row)
	}
	if m.topicNames != nil {
		bw.U8(1)
		bw.Strs(m.topicNames)
	} else {
		bw.U8(0)
	}
	return bw.Flush()
}

// ReadBinary parses a payload produced by WriteBinary (any version)
// from a stream, always copying onto the heap.
func ReadBinary(r io.Reader) (*Model, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("topic: read binary: %w", err)
	}
	return ReadView(arena.NewReader(data))
}

// ReadView parses a binary payload through an arena reader. Zero-copy
// mode aliases the p(w|z) pool into the reader's backing bytes and
// skips the O(z×|V|) probability revalidation; the vocabulary map is
// always rebuilt on the heap.
func ReadView(br *arena.Reader) (*Model, error) {
	version := br.U8()
	if br.Err() == nil && version != topicBinaryVersion && version != topicBinaryVersionV1 {
		return nil, fmt.Errorf("topic: unsupported binary version %d", version)
	}
	z := int(br.U32())
	if br.Err() == nil && (z <= 0 || z > 1<<16) {
		return nil, fmt.Errorf("topic: binary payload topic count %d out of range", z)
	}
	vocab := br.Strs()
	if version == topicBinaryVersion {
		br.Align8()
	}
	prior := Dist(br.F64s())
	var pwz [][]float64
	if br.Err() == nil {
		if version == topicBinaryVersionV1 {
			pwz = make([][]float64, 0, z)
			for zi := 0; zi < z; zi++ {
				pwz = append(pwz, br.F64s())
			}
		} else {
			br.Align8()
			pool := br.F64s()
			if br.Err() == nil {
				if len(pool) != z*len(vocab) {
					return nil, fmt.Errorf("topic: binary payload pool has %d entries for %d topics × %d keywords",
						len(pool), z, len(vocab))
				}
				pwz = make([][]float64, z)
				for zi := 0; zi < z; zi++ {
					pwz[zi] = pool[zi*len(vocab) : (zi+1)*len(vocab)]
				}
			}
		}
	}
	var names []string
	if hasNames := br.U8(); br.Err() == nil && hasNames == 1 {
		names = br.Strs()
	}
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("topic: read binary: %w", err)
	}
	if len(vocab) == 0 {
		return nil, fmt.Errorf("topic: binary payload has empty vocabulary")
	}
	if len(prior) != z {
		return nil, fmt.Errorf("topic: binary payload prior has %d entries for %d topics", len(prior), z)
	}
	m := &Model{
		vocab:   vocab,
		vocabID: make(map[string]int, len(vocab)),
		z:       z,
		pwz:     pwz,
		prior:   prior,
	}
	for i, w := range vocab {
		if w == "" {
			return nil, fmt.Errorf("topic: binary payload empty keyword at index %d", i)
		}
		if _, dup := m.vocabID[w]; dup {
			return nil, fmt.Errorf("topic: binary payload duplicate keyword %q", w)
		}
		m.vocabID[w] = i
	}
	for zi, row := range pwz {
		if len(row) != len(vocab) {
			return nil, fmt.Errorf("topic: binary payload row %d has %d entries for %d keywords",
				zi, len(row), len(vocab))
		}
	}
	if !br.ZeroCopy() {
		for zi, row := range pwz {
			for wi, p := range row {
				if !(p >= 0 && p <= 1) { // also rejects NaN
					return nil, fmt.Errorf("topic: binary payload p(w|z)[%d][%d] = %v invalid", zi, wi, p)
				}
			}
		}
	}
	if err := prior.Validate(); err != nil {
		return nil, fmt.Errorf("topic: binary payload prior: %w", err)
	}
	if names != nil {
		if err := m.SetTopicNames(names); err != nil {
			return nil, fmt.Errorf("topic: binary payload: %w", err)
		}
	}
	return m, nil
}
