package topic

import (
	"math"
	"testing"
	"testing/quick"

	"octopus/internal/rng"
)

// testModel builds a 3-topic model over a 6-word vocabulary with sharply
// separated topics: words 0-1 belong to topic 0, 2-3 to topic 1, 4-5 to
// topic 2.
func testModel(t *testing.T) *Model {
	t.Helper()
	vocab := []string{"data", "mining", "network", "social", "learning", "neural"}
	pwz := [][]float64{
		{0.5, 0.5, 0, 0, 0, 0},
		{0, 0, 0.5, 0.5, 0, 0},
		{0, 0, 0, 0, 0.5, 0.5},
	}
	m, err := NewModel(vocab, pwz, nil)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestUniformPure(t *testing.T) {
	u := Uniform(4)
	if err := u.Validate(); err != nil {
		t.Fatal(err)
	}
	if u[2] != 0.25 {
		t.Fatalf("uniform = %v", u)
	}
	p := Pure(1, 3)
	if p[1] != 1 || p[0] != 0 {
		t.Fatalf("pure = %v", p)
	}
}

func TestNormalizeZero(t *testing.T) {
	d := Dist{0, 0, 0}
	d.Normalize()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejects(t *testing.T) {
	bad := []Dist{
		{},
		{0.5, 0.6},
		{-0.1, 1.1},
		{math.NaN(), 1},
		{math.Inf(1), 0},
	}
	for i, d := range bad {
		if d.Validate() == nil {
			t.Fatalf("case %d: Validate accepted %v", i, d)
		}
	}
}

func TestDistances(t *testing.T) {
	a := Dist{1, 0}
	b := Dist{0, 1}
	if got := a.L1(b); got != 2 {
		t.Fatalf("L1 = %v", got)
	}
	if got := a.Cosine(b); got != 0 {
		t.Fatalf("Cosine orthogonal = %v", got)
	}
	if got := a.Cosine(a); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Cosine self = %v", got)
	}
}

func TestEntropy(t *testing.T) {
	if got := (Dist{1, 0}).Entropy(); got != 0 {
		t.Fatalf("entropy of point mass = %v", got)
	}
	u := Uniform(4).Entropy()
	if math.Abs(u-math.Log(4)) > 1e-12 {
		t.Fatalf("entropy of uniform = %v, want ln4", u)
	}
}

func TestTop(t *testing.T) {
	d := Dist{0.1, 0.5, 0.4}
	top := d.Top(2)
	if top[0] != 1 || top[1] != 2 {
		t.Fatalf("Top = %v", top)
	}
	if got := d.Top(10); len(got) != 3 {
		t.Fatalf("Top(10) len = %d", len(got))
	}
}

func TestNewModelErrors(t *testing.T) {
	vocab := []string{"a", "b"}
	ok := [][]float64{{1, 1}, {1, 1}}
	cases := []struct {
		name  string
		vocab []string
		pwz   [][]float64
		prior Dist
	}{
		{"no topics", vocab, nil, nil},
		{"no vocab", nil, ok, nil},
		{"row mismatch", vocab, [][]float64{{1}}, nil},
		{"prior mismatch", vocab, ok, Dist{1}},
		{"dup keyword", []string{"a", "a"}, ok, nil},
		{"empty keyword", []string{"a", ""}, ok, nil},
		{"negative prob", vocab, [][]float64{{-1, 1}, {1, 1}}, nil},
	}
	for _, c := range cases {
		if _, err := NewModel(c.vocab, c.pwz, c.prior); err == nil {
			t.Fatalf("%s: NewModel succeeded", c.name)
		}
	}
}

func TestInferGammaSharp(t *testing.T) {
	m := testModel(t)
	g, unknown := m.InferGamma([]string{"data", "mining"})
	if len(unknown) != 0 {
		t.Fatalf("unknown = %v", unknown)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g[0] < 0.99 {
		t.Fatalf("γ = %v, want concentrated on topic 0", g)
	}
}

func TestInferGammaMixed(t *testing.T) {
	m := testModel(t)
	g, _ := m.InferGamma([]string{"data", "network"})
	// data→topic0, network→topic1: should be split between 0 and 1.
	if math.Abs(g[0]-g[1]) > 1e-6 || g[2] > 0.01 {
		t.Fatalf("γ = %v, want even split on topics 0,1", g)
	}
}

func TestInferGammaUnknown(t *testing.T) {
	m := testModel(t)
	g, unknown := m.InferGamma([]string{"quantum", "blockchain"})
	if len(unknown) != 2 {
		t.Fatalf("unknown = %v", unknown)
	}
	// Falls back to prior (uniform).
	for z := 0; z < 3; z++ {
		if math.Abs(g[z]-1.0/3) > 1e-9 {
			t.Fatalf("γ = %v, want prior", g)
		}
	}
}

func TestInferGammaIDsMatchesStrings(t *testing.T) {
	m := testModel(t)
	gs, _ := m.InferGamma([]string{"learning", "neural"})
	id1, _ := m.KeywordID("learning")
	id2, _ := m.KeywordID("neural")
	gi := m.InferGammaIDs([]int{id1, id2})
	if gs.L1(gi) > 1e-12 {
		t.Fatalf("string/id inference differ: %v vs %v", gs, gi)
	}
}

func TestRadar(t *testing.T) {
	m := testModel(t)
	r, ok := m.Radar("social")
	if !ok {
		t.Fatal("Radar miss")
	}
	if r[1] < 0.99 {
		t.Fatalf("radar(social) = %v, want topic 1", r)
	}
	if _, ok := m.Radar("nope"); ok {
		t.Fatal("Radar hit for unknown keyword")
	}
}

func TestTopKeywords(t *testing.T) {
	m := testModel(t)
	top := m.TopKeywords(2, 2)
	if len(top) != 2 {
		t.Fatalf("TopKeywords = %v", top)
	}
	set := map[string]bool{top[0]: true, top[1]: true}
	if !set["learning"] || !set["neural"] {
		t.Fatalf("TopKeywords(2) = %v", top)
	}
}

func TestKeywordCoherence(t *testing.T) {
	m := testModel(t)
	same, ok := m.KeywordCoherence("data", "mining")
	if !ok || same < 0.99 {
		t.Fatalf("coherence(data,mining) = %v,%v", same, ok)
	}
	diff, ok := m.KeywordCoherence("data", "neural")
	if !ok || diff > 0.2 {
		t.Fatalf("coherence(data,neural) = %v,%v", diff, ok)
	}
	if _, ok := m.KeywordCoherence("data", "nope"); ok {
		t.Fatal("coherence with unknown keyword reported ok")
	}
}

func TestTopicNames(t *testing.T) {
	m := testModel(t)
	if m.TopicName(0) != "topic-0" {
		t.Fatalf("default name = %q", m.TopicName(0))
	}
	if err := m.SetTopicNames([]string{"DM", "SN", "ML"}); err != nil {
		t.Fatal(err)
	}
	if m.TopicName(2) != "ML" {
		t.Fatalf("name = %q", m.TopicName(2))
	}
	if err := m.SetTopicNames([]string{"x"}); err == nil {
		t.Fatal("SetTopicNames accepted wrong length")
	}
}

func TestAccessors(t *testing.T) {
	m := testModel(t)
	if m.NumTopics() != 3 || m.VocabSize() != 6 {
		t.Fatalf("Z=%d V=%d", m.NumTopics(), m.VocabSize())
	}
	id, ok := m.KeywordID("network")
	if !ok || m.Keyword(id) != "network" {
		t.Fatalf("keyword round trip failed")
	}
	if m.PWZ(0, id) > 1e-6 {
		t.Fatalf("PWZ(0, network) = %v", m.PWZ(0, id))
	}
	if err := m.Prior().Validate(); err != nil {
		t.Fatal(err)
	}
}

// Property: inferred γ is always a valid distribution for any random
// model and any keyword subset.
func TestQuickInferGammaSimplex(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		z := 2 + r.Intn(6)
		v := 3 + r.Intn(20)
		vocab := make([]string, v)
		for i := range vocab {
			vocab[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
		}
		pwz := make([][]float64, z)
		for zi := range pwz {
			row := make([]float64, v)
			for wi := range row {
				row[wi] = r.Float64()
			}
			pwz[zi] = row
		}
		m, err := NewModel(vocab, pwz, Dist(r.DirichletSym(1, z)))
		if err != nil {
			return false
		}
		nq := 1 + r.Intn(4)
		q := make([]string, nq)
		for i := range q {
			q[i] = vocab[r.Intn(v)]
		}
		g, _ := m.InferGamma(q)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a keyword strongly associated with topic z never
// decreases γ_z relative to the others (Bayes monotonicity in this
// separated-model setting).
func TestQuickSharpKeywordRaisesTopic(t *testing.T) {
	m, err := NewModel(
		[]string{"w0", "w1", "w2"},
		[][]float64{
			{0.9, 0.05, 0.05},
			{0.05, 0.9, 0.05},
			{0.05, 0.05, 0.9},
		}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for z := 0; z < 3; z++ {
		g, _ := m.InferGamma([]string{m.Keyword(z)})
		for o := 0; o < 3; o++ {
			if o != z && g[z] <= g[o] {
				t.Fatalf("keyword %d: γ=%v does not favor its topic", z, g)
			}
		}
	}
}

func BenchmarkInferGamma(b *testing.B) {
	vocab := make([]string, 1000)
	for i := range vocab {
		vocab[i] = "kw" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+i/676))
	}
	r := rng.New(1)
	const z = 16
	pwz := make([][]float64, z)
	for zi := range pwz {
		row := make([]float64, len(vocab))
		for wi := range row {
			row[wi] = r.Float64()
		}
		pwz[zi] = row
	}
	m, err := NewModel(vocab, pwz, nil)
	if err != nil {
		b.Fatal(err)
	}
	query := []string{vocab[3], vocab[77], vocab[512]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, _ := m.InferGamma(query)
		_ = g
	}
}
