package topic

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestModelIORoundTrip(t *testing.T) {
	m := testModel(t)
	if err := m.SetTopicNames([]string{"data mining", "social nets", "ML"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumTopics() != m.NumTopics() || m2.VocabSize() != m.VocabSize() {
		t.Fatalf("shape: %d/%d vs %d/%d", m2.NumTopics(), m2.VocabSize(), m.NumTopics(), m.VocabSize())
	}
	if m2.TopicName(1) != "social nets" {
		t.Fatalf("name lost: %q", m2.TopicName(1))
	}
	// p(w|z) must round-trip up to the model's smoothing epsilon (Read
	// re-applies the 1e-9 floor of NewModel).
	for _, q := range [][]string{{"data"}, {"network", "social"}, {"learning", "neural"}} {
		g1, _ := m.InferGamma(q)
		g2, _ := m2.InferGamma(q)
		if g1.L1(g2) > 1e-6 {
			t.Fatalf("inference differs after round trip: %v vs %v", g1, g2)
		}
	}
	if m.Prior().L1(m2.Prior()) > 1e-9 {
		t.Fatalf("prior differs")
	}
}

func TestModelIORoundTripNoNames(t *testing.T) {
	m := testModel(t)
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.TopicName(0) != "topic-0" {
		t.Fatalf("unexpected name %q", m2.TopicName(0))
	}
}

func TestModelIOErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus 1 2",
		"topicmodel x 2",
		"topicmodel 2 2\nprior 0.5",          // short prior
		"topicmodel 2 1\nw a 0.5",            // short keyword probs
		"topicmodel 2 1\ntname 9 x\nw a 1 1", // bad topic index
		"topicmodel 2 2\nw a 1 1",            // vocab count mismatch
		"topicmodel 2 1\nzzz",                // unknown record
		"topicmodel 2 1\nw a bad 1",          // bad probability
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Fatalf("Read(%q) succeeded", c)
		}
	}
}

func TestModelIOMultiWordTopicNames(t *testing.T) {
	m := testModel(t)
	if err := m.SetTopicNames([]string{"a b c", "d", "e f"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.TopicName(0) != "a b c" || m2.TopicName(2) != "e f" {
		t.Fatalf("multi-word names lost: %q %q", m2.TopicName(0), m2.TopicName(2))
	}
}

func TestModelIOPriorPreserved(t *testing.T) {
	vocab := []string{"x", "y"}
	pwz := [][]float64{{1, 0}, {0, 1}}
	m, err := NewModel(vocab, pwz, Dist{0.8, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m2.Prior()[0]-0.8) > 1e-9 {
		t.Fatalf("prior = %v", m2.Prior())
	}
}
