package topic

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestModelIORoundTrip(t *testing.T) {
	m := testModel(t)
	if err := m.SetTopicNames([]string{"data mining", "social nets", "ML"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumTopics() != m.NumTopics() || m2.VocabSize() != m.VocabSize() {
		t.Fatalf("shape: %d/%d vs %d/%d", m2.NumTopics(), m2.VocabSize(), m.NumTopics(), m.VocabSize())
	}
	if m2.TopicName(1) != "social nets" {
		t.Fatalf("name lost: %q", m2.TopicName(1))
	}
	// p(w|z) must round-trip up to the model's smoothing epsilon (Read
	// re-applies the 1e-9 floor of NewModel).
	for _, q := range [][]string{{"data"}, {"network", "social"}, {"learning", "neural"}} {
		g1, _ := m.InferGamma(q)
		g2, _ := m2.InferGamma(q)
		if g1.L1(g2) > 1e-6 {
			t.Fatalf("inference differs after round trip: %v vs %v", g1, g2)
		}
	}
	if m.Prior().L1(m2.Prior()) > 1e-9 {
		t.Fatalf("prior differs")
	}
}

func TestModelIORoundTripNoNames(t *testing.T) {
	m := testModel(t)
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.TopicName(0) != "topic-0" {
		t.Fatalf("unexpected name %q", m2.TopicName(0))
	}
}

// TestCarriedModelRoundTrip mirrors the keyword model's life across
// streaming folds: the base model (with display names) is carried onto
// each rebuilt snapshot unchanged, then persisted and reloaded — twice,
// because a recovered system re-persists at its next checkpoint. The
// codecs must be stable under repeated round trips.
func TestCarriedModelRoundTrip(t *testing.T) {
	m := testModel(t)
	if err := m.SetTopicNames([]string{"data mining", "social nets", "ML"}); err != nil {
		t.Fatal(err)
	}
	cur := m
	for cycle := 0; cycle < 2; cycle++ {
		var buf bytes.Buffer
		if err := Write(&buf, cur); err != nil {
			t.Fatal(err)
		}
		next, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	if cur.TopicName(1) != "social nets" {
		t.Fatalf("name drifted: %q", cur.TopicName(1))
	}
	for _, q := range [][]string{{"data", "mining"}, {"social"}} {
		g1, _ := m.InferGamma(q)
		g2, _ := cur.InferGamma(q)
		if g1.L1(g2) > 1e-6 {
			t.Fatalf("inference drifted after two round trips: %v vs %v", g1, g2)
		}
	}
}

// TestBinaryRoundTrip checks the snapshot store's codec reproduces the
// model bit-for-bit (no smoothing re-application).
func TestBinaryRoundTrip(t *testing.T) {
	m := testModel(t)
	if err := m.SetTopicNames([]string{"data mining", "social nets", "ML"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumTopics() != m.NumTopics() || m2.VocabSize() != m.VocabSize() {
		t.Fatalf("shape: %d/%d vs %d/%d", m2.NumTopics(), m2.VocabSize(), m.NumTopics(), m.VocabSize())
	}
	if m2.TopicName(2) != "ML" {
		t.Fatalf("name lost: %q", m2.TopicName(2))
	}
	for z := 0; z < m.NumTopics(); z++ {
		for w := 0; w < m.VocabSize(); w++ {
			if m.PWZ(z, w) != m2.PWZ(z, w) {
				t.Fatalf("p(w|z)[%d][%d] not bit-identical: %v vs %v", z, w, m.PWZ(z, w), m2.PWZ(z, w))
			}
		}
	}
	for _, q := range [][]string{{"data"}, {"network", "learning"}} {
		g1, _ := m.InferGamma(q)
		g2, _ := m2.InferGamma(q)
		if g1.L1(g2) != 0 {
			t.Fatalf("binary inference not identical: %v vs %v", g1, g2)
		}
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	m := testModel(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 5 {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestModelIOErrors(t *testing.T) {
	cases := []string{
		"",
		"bogus 1 2",
		"topicmodel x 2",
		"topicmodel 2 2\nprior 0.5",          // short prior
		"topicmodel 2 1\nw a 0.5",            // short keyword probs
		"topicmodel 2 1\ntname 9 x\nw a 1 1", // bad topic index
		"topicmodel 2 2\nw a 1 1",            // vocab count mismatch
		"topicmodel 2 1\nzzz",                // unknown record
		"topicmodel 2 1\nw a bad 1",          // bad probability
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Fatalf("Read(%q) succeeded", c)
		}
	}
}

func TestModelIOMultiWordTopicNames(t *testing.T) {
	m := testModel(t)
	if err := m.SetTopicNames([]string{"a b c", "d", "e f"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.TopicName(0) != "a b c" || m2.TopicName(2) != "e f" {
		t.Fatalf("multi-word names lost: %q %q", m2.TopicName(0), m2.TopicName(2))
	}
}

func TestModelIOPriorPreserved(t *testing.T) {
	vocab := []string{"x", "y"}
	pwz := [][]float64{{1, 0}, {0, 1}}
	m, err := NewModel(vocab, pwz, Dist{0.8, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m2.Prior()[0]-0.8) > 1e-9 {
		t.Fatalf("prior = %v", m2.Prior())
	}
}
