// Package topic implements the keyword/topic layer of OCTOPUS
// (Section II-B of the paper): topic distributions on the simplex, a
// keyword model p(w|z) with topic priors p(z), Bayesian inference of the
// topic distribution γ captured by a keyword set, and the per-keyword
// topic profile displayed as a radar diagram in the demo UI.
package topic

import (
	"fmt"
	"math"
	"sort"
)

// Dist is a probability distribution over topics (a point on the
// simplex). Most engine code passes Dists by value semantics; they are
// plain slices and must not be aliased across mutations.
type Dist []float64

// Uniform returns the uniform distribution over z topics.
func Uniform(z int) Dist {
	d := make(Dist, z)
	for i := range d {
		d[i] = 1 / float64(z)
	}
	return d
}

// Pure returns the point distribution concentrated on topic z.
func Pure(z, numTopics int) Dist {
	d := make(Dist, numTopics)
	d[z] = 1
	return d
}

// Normalize scales d to sum to 1 in place; all-zero input becomes
// uniform. It returns d for chaining.
func (d Dist) Normalize() Dist {
	sum := 0.0
	for _, v := range d {
		sum += v
	}
	if sum <= 0 {
		for i := range d {
			d[i] = 1 / float64(len(d))
		}
		return d
	}
	inv := 1 / sum
	for i := range d {
		d[i] *= inv
	}
	return d
}

// Validate returns an error unless d is a finite distribution summing to
// 1 within tolerance.
func (d Dist) Validate() error {
	if len(d) == 0 {
		return fmt.Errorf("topic: empty distribution")
	}
	sum := 0.0
	for i, v := range d {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return fmt.Errorf("topic: component %d = %v invalid", i, v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-6 {
		return fmt.Errorf("topic: distribution sums to %v", sum)
	}
	return nil
}

// L1 returns the L1 distance between two distributions.
func (d Dist) L1(other Dist) float64 {
	s := 0.0
	for i := range d {
		s += math.Abs(d[i] - other[i])
	}
	return s
}

// Cosine returns the cosine similarity between two distributions.
func (d Dist) Cosine(other Dist) float64 {
	var dot, na, nb float64
	for i := range d {
		dot += d[i] * other[i]
		na += d[i] * d[i]
		nb += other[i] * other[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}

// Entropy returns the Shannon entropy (nats).
func (d Dist) Entropy() float64 {
	h := 0.0
	for _, v := range d {
		if v > 0 {
			h -= v * math.Log(v)
		}
	}
	return h
}

// Top returns the k most probable topic indices in decreasing order.
func (d Dist) Top(k int) []int {
	idx := make([]int, len(d))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return d[idx[a]] > d[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	return idx[:k]
}

// Clone returns an independent copy of d.
func (d Dist) Clone() Dist { return append(Dist(nil), d...) }

// Model is the keyword/topic model: a vocabulary with per-topic keyword
// distributions p(w|z) and topic priors p(z). Immutable after Build; all
// query methods are safe for concurrent use.
type Model struct {
	vocab   []string
	vocabID map[string]int
	z       int
	// pwz[z][w] = p(w|z); each row sums to 1.
	pwz [][]float64
	// prior[z] = p(z).
	prior Dist
	// topicNames are optional human-readable topic labels.
	topicNames []string
}

// NewModel constructs a Model from a vocabulary, per-topic keyword
// distributions (rows normalized internally with add-eps smoothing) and a
// prior (normalized internally; nil means uniform).
func NewModel(vocab []string, pwz [][]float64, prior Dist) (*Model, error) {
	z := len(pwz)
	if z == 0 {
		return nil, fmt.Errorf("topic: model needs at least one topic")
	}
	if len(vocab) == 0 {
		return nil, fmt.Errorf("topic: model needs a vocabulary")
	}
	for zi, row := range pwz {
		if len(row) != len(vocab) {
			return nil, fmt.Errorf("topic: p(w|z) row %d has %d entries, vocab has %d",
				zi, len(row), len(vocab))
		}
	}
	if prior == nil {
		prior = Uniform(z)
	}
	if len(prior) != z {
		return nil, fmt.Errorf("topic: prior has %d entries for %d topics", len(prior), z)
	}
	m := &Model{
		vocab:   append([]string(nil), vocab...),
		vocabID: make(map[string]int, len(vocab)),
		z:       z,
		pwz:     make([][]float64, z),
		prior:   prior.Clone().Normalize(),
	}
	for i, w := range m.vocab {
		if w == "" {
			return nil, fmt.Errorf("topic: empty keyword at vocab index %d", i)
		}
		if _, dup := m.vocabID[w]; dup {
			return nil, fmt.Errorf("topic: duplicate keyword %q", w)
		}
		m.vocabID[w] = i
	}
	const eps = 1e-9 // smoothing floor so log-space inference never hits -Inf
	for zi, row := range pwz {
		r := make([]float64, len(row))
		sum := 0.0
		for wi, v := range row {
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, fmt.Errorf("topic: p(w|z) entry [%d][%d] = %v invalid", zi, wi, v)
			}
			r[wi] = v + eps
			sum += r[wi]
		}
		inv := 1 / sum
		for wi := range r {
			r[wi] *= inv
		}
		m.pwz[zi] = r
	}
	return m, nil
}

// SetTopicNames attaches optional display labels for topics.
func (m *Model) SetTopicNames(names []string) error {
	if len(names) != m.z {
		return fmt.Errorf("topic: %d names for %d topics", len(names), m.z)
	}
	m.topicNames = append([]string(nil), names...)
	return nil
}

// TopicName returns the display label of topic z (a generated label if
// none was set).
func (m *Model) TopicName(z int) string {
	if m.topicNames != nil {
		return m.topicNames[z]
	}
	return fmt.Sprintf("topic-%d", z)
}

// NumTopics returns Z.
func (m *Model) NumTopics() int { return m.z }

// VocabSize returns |W|.
func (m *Model) VocabSize() int { return len(m.vocab) }

// Vocab returns the vocabulary; callers must not modify it.
func (m *Model) Vocab() []string { return m.vocab }

// KeywordID resolves a keyword to its vocabulary index.
func (m *Model) KeywordID(w string) (int, bool) {
	id, ok := m.vocabID[w]
	return id, ok
}

// Keyword returns the keyword at vocabulary index i.
func (m *Model) Keyword(i int) string { return m.vocab[i] }

// PWZ returns p(w|z) for vocabulary index w under topic z.
func (m *Model) PWZ(z, w int) float64 { return m.pwz[z][w] }

// Prior returns p(z); callers must not modify the returned slice.
func (m *Model) Prior() Dist { return m.prior }

// InferGamma derives the topic distribution captured by a keyword set via
// the Bayesian formula of [6]: γ_z ∝ p(z)·Π_{w∈W} p(w|z), computed in log
// space. Unknown keywords are ignored; the second return lists them. If
// no known keyword remains, the prior is returned.
func (m *Model) InferGamma(keywords []string) (Dist, []string) {
	logG := make([]float64, m.z)
	for z := range logG {
		logG[z] = math.Log(m.prior[z])
	}
	var unknown []string
	used := 0
	for _, w := range keywords {
		id, ok := m.vocabID[w]
		if !ok {
			unknown = append(unknown, w)
			continue
		}
		used++
		for z := 0; z < m.z; z++ {
			logG[z] += math.Log(m.pwz[z][id])
		}
	}
	if used == 0 {
		return m.prior.Clone(), unknown
	}
	// Softmax with max-subtraction for numerical stability.
	maxv := math.Inf(-1)
	for _, v := range logG {
		if v > maxv {
			maxv = v
		}
	}
	g := make(Dist, m.z)
	for z, v := range logG {
		g[z] = math.Exp(v - maxv)
	}
	return g.Normalize(), unknown
}

// InferGammaIDs is InferGamma for pre-resolved vocabulary indices.
func (m *Model) InferGammaIDs(ids []int) Dist {
	logG := make([]float64, m.z)
	for z := range logG {
		logG[z] = math.Log(m.prior[z])
	}
	for _, id := range ids {
		for z := 0; z < m.z; z++ {
			logG[z] += math.Log(m.pwz[z][id])
		}
	}
	maxv := math.Inf(-1)
	for _, v := range logG {
		if v > maxv {
			maxv = v
		}
	}
	g := make(Dist, m.z)
	for z, v := range logG {
		g[z] = math.Exp(v - maxv)
	}
	return g.Normalize()
}

// Radar returns p(z|w) for one keyword — the topic profile rendered as a
// radar diagram in the OCTOPUS UI (Scenario 2). ok is false for unknown
// keywords.
func (m *Model) Radar(keyword string) (Dist, bool) {
	id, ok := m.vocabID[keyword]
	if !ok {
		return nil, false
	}
	g := make(Dist, m.z)
	for z := 0; z < m.z; z++ {
		g[z] = m.pwz[z][id] * m.prior[z]
	}
	return g.Normalize(), true
}

// TopKeywords returns the k most probable keywords of topic z.
func (m *Model) TopKeywords(z, k int) []string {
	idx := make([]int, len(m.vocab))
	for i := range idx {
		idx[i] = i
	}
	row := m.pwz[z]
	sort.Slice(idx, func(a, b int) bool { return row[idx[a]] > row[idx[b]] })
	if k > len(idx) {
		k = len(idx)
	}
	out := make([]string, k)
	for i := 0; i < k; i++ {
		out[i] = m.vocab[idx[i]]
	}
	return out
}

// KeywordCoherence returns the cosine similarity of the topic profiles of
// two keywords — used by the suggestion engine to keep suggested keyword
// sets topically consistent.
func (m *Model) KeywordCoherence(w1, w2 string) (float64, bool) {
	a, ok1 := m.Radar(w1)
	b, ok2 := m.Radar(w2)
	if !ok1 || !ok2 {
		return 0, false
	}
	return a.Cosine(b), true
}
