package topic

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Write serializes a keyword model:
//
//	topicmodel <Z> <V>
//	prior <p1> ... <pZ>
//	tname <z> <label>
//	w <keyword> <p(w|1)> ... <p(w|Z)>
func Write(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "topicmodel %d %d\n", m.z, len(m.vocab)); err != nil {
		return err
	}
	if _, err := fmt.Fprint(bw, "prior"); err != nil {
		return err
	}
	for _, p := range m.prior {
		if _, err := fmt.Fprintf(bw, " %g", p); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintln(bw); err != nil {
		return err
	}
	if m.topicNames != nil {
		for z, name := range m.topicNames {
			if _, err := fmt.Fprintf(bw, "tname %d %s\n", z, name); err != nil {
				return err
			}
		}
	}
	for wi, kw := range m.vocab {
		if _, err := fmt.Fprintf(bw, "w %s", kw); err != nil {
			return err
		}
		for z := 0; z < m.z; z++ {
			if _, err := fmt.Fprintf(bw, " %g", m.pwz[z][wi]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the format produced by Write.
func Read(r io.Reader) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("topic: empty model stream")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 3 || header[0] != "topicmodel" {
		return nil, fmt.Errorf("topic: malformed header %q", sc.Text())
	}
	z, err1 := strconv.Atoi(header[1])
	v, err2 := strconv.Atoi(header[2])
	if err1 != nil || err2 != nil || z <= 0 || v <= 0 {
		return nil, fmt.Errorf("topic: malformed header %q", sc.Text())
	}
	var prior Dist
	names := make([]string, z)
	haveNames := false
	vocab := make([]string, 0, v)
	rows := make([][]float64, z)
	for zi := range rows {
		rows[zi] = make([]float64, 0, v)
	}
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "prior":
			if len(fields) != z+1 {
				return nil, fmt.Errorf("topic: line %d: prior needs %d entries", lineNo, z)
			}
			prior = make(Dist, z)
			for zi := 0; zi < z; zi++ {
				p, err := strconv.ParseFloat(fields[zi+1], 64)
				if err != nil {
					return nil, fmt.Errorf("topic: line %d: bad prior entry", lineNo)
				}
				prior[zi] = p
			}
		case "tname":
			if len(fields) < 3 {
				return nil, fmt.Errorf("topic: line %d: malformed tname", lineNo)
			}
			zi, err := strconv.Atoi(fields[1])
			if err != nil || zi < 0 || zi >= z {
				return nil, fmt.Errorf("topic: line %d: bad topic index", lineNo)
			}
			names[zi] = strings.Join(fields[2:], " ")
			haveNames = true
		case "w":
			if len(fields) != z+2 {
				return nil, fmt.Errorf("topic: line %d: keyword needs %d probabilities", lineNo, z)
			}
			vocab = append(vocab, fields[1])
			for zi := 0; zi < z; zi++ {
				p, err := strconv.ParseFloat(fields[zi+2], 64)
				if err != nil {
					return nil, fmt.Errorf("topic: line %d: bad probability", lineNo)
				}
				rows[zi] = append(rows[zi], p)
			}
		default:
			return nil, fmt.Errorf("topic: line %d: unknown record %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("topic: read: %w", err)
	}
	if len(vocab) != v {
		return nil, fmt.Errorf("topic: header promised %d keywords, found %d", v, len(vocab))
	}
	m, err := NewModel(vocab, rows, prior)
	if err != nil {
		return nil, err
	}
	if haveNames {
		for zi := range names {
			if names[zi] == "" {
				names[zi] = fmt.Sprintf("topic-%d", zi)
			}
		}
		if err := m.SetTopicNames(names); err != nil {
			return nil, err
		}
	}
	return m, nil
}
