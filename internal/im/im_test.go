package im

import (
	"testing"

	"octopus/internal/graph"
	"octopus/internal/rng"
	"octopus/internal/tic"
	"octopus/internal/topic"
)

// starModel: node 0 -> 1..15 with p=0.9; node 16 -> 17 with p=0.9;
// the clear best single seed is 0, the best pair adds 16.
func starModel(t testing.TB) (*tic.Model, []float64) {
	b := graph.NewBuilder(18)
	for v := int32(1); v <= 15; v++ {
		b.AddEdge(0, v)
	}
	b.AddEdge(16, 17)
	g := b.Build()
	mb := tic.NewBuilder(g, 1)
	for e := 0; e < g.NumEdges(); e++ {
		if err := mb.SetProb(graph.EdgeID(e), 0, 0.9); err != nil {
			t.Fatal(err)
		}
	}
	m := mb.Build()
	return m, m.Weights(topic.Dist{1})
}

func TestRandom(t *testing.T) {
	m, _ := starModel(t)
	r := rng.New(1)
	seeds := Random(m.Graph(), 5, r)
	if len(seeds) != 5 {
		t.Fatalf("len = %d", len(seeds))
	}
	seen := map[graph.NodeID]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatalf("duplicate seed %d", s)
		}
		seen[s] = true
	}
	if got := Random(m.Graph(), 1000, r); len(got) != 18 {
		t.Fatalf("k>n returned %d", len(got))
	}
}

func TestTopDegree(t *testing.T) {
	m, _ := starModel(t)
	seeds := TopDegree(m.Graph(), 2)
	if seeds[0] != 0 {
		t.Fatalf("TopDegree first = %d, want hub 0", seeds[0])
	}
}

func TestTopWeightedDegree(t *testing.T) {
	m, w := starModel(t)
	seeds := TopWeightedDegree(m.Graph(), w, 2)
	if seeds[0] != 0 || seeds[1] != 16 {
		t.Fatalf("TopWeightedDegree = %v", seeds)
	}
}

func TestSingleDiscount(t *testing.T) {
	m, w := starModel(t)
	seeds := SingleDiscount(m.Graph(), w, 2)
	if seeds[0] != 0 || seeds[1] != 16 {
		t.Fatalf("SingleDiscount = %v", seeds)
	}
}

func TestSingleDiscountDiscounts(t *testing.T) {
	// 0 -> {1,2}, 1 -> {2,3}: after picking 0... actually verify that a
	// node pointing into chosen seeds loses score: build 0->1 (strong),
	// 2->0 (strong), 2->3 (weak). After choosing 0, node 2's score drops.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	g := b.Build()
	w := make([]float64, g.NumEdges())
	e01, _ := g.FindEdge(0, 1)
	e20, _ := g.FindEdge(2, 0)
	e23, _ := g.FindEdge(2, 3)
	w[e01] = 0.9
	w[e20] = 0.8
	w[e23] = 0.1
	seeds := SingleDiscount(g, w, 2)
	if seeds[0] != 0 {
		t.Fatalf("first pick = %d", seeds[0])
	}
	// Node 2 score after discount: 0.1 < node 1 (0) ... 2 still wins with 0.1.
	if seeds[1] != 2 {
		t.Fatalf("second pick = %d, want 2", seeds[1])
	}
}

func TestDegreeDiscount(t *testing.T) {
	m, w := starModel(t)
	seeds := DegreeDiscount(m.Graph(), w, 2)
	if seeds[0] != 0 || seeds[1] != 16 {
		t.Fatalf("DegreeDiscount = %v", seeds)
	}
	// Neighbors of chosen hub must rank below untouched node 16's leaf.
	seeds3 := DegreeDiscount(m.Graph(), w, 18)
	if len(seeds3) != 18 {
		t.Fatalf("full ranking len = %d", len(seeds3))
	}
}

func TestPageRank(t *testing.T) {
	m, w := starModel(t)
	seeds := PageRank(m.Graph(), w, 1, 40, 0.85)
	if seeds[0] != 0 {
		t.Fatalf("PageRank top = %d, want 0", seeds[0])
	}
	// Defaulted parameters work too.
	if got := PageRank(m.Graph(), w, 1, 0, 0); got[0] != 0 {
		t.Fatalf("PageRank with defaults = %v", got)
	}
}

func TestPageRankEmpty(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	if got := PageRank(g, nil, 3, 10, 0.85); got != nil {
		t.Fatalf("empty graph PageRank = %v", got)
	}
}

func TestCELFGreedyFindsHub(t *testing.T) {
	m, _ := starModel(t)
	res, err := CELFGreedy(m, topic.Dist{1}, 2, 300, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	if res.Seeds[0] != 0 {
		t.Fatalf("CELF first seed = %d", res.Seeds[0])
	}
	if res.Seeds[1] != 16 {
		t.Fatalf("CELF second seed = %d", res.Seeds[1])
	}
	if len(res.Spreads) != 2 || res.Spreads[1] <= res.Spreads[0] {
		t.Fatalf("spreads not increasing: %v", res.Spreads)
	}
	if res.Evals < m.Graph().NumNodes() {
		t.Fatalf("evals = %d, want >= n", res.Evals)
	}
}

func TestCELFLazinessSavesEvals(t *testing.T) {
	m, _ := starModel(t)
	res, err := CELFGreedy(m, topic.Dist{1}, 3, 200, rng.New(6))
	if err != nil {
		t.Fatal(err)
	}
	// Plain greedy would need n evals per round = 54; CELF should do far
	// fewer than 2n total for k=3 on this graph.
	if res.Evals > 2*m.Graph().NumNodes() {
		t.Fatalf("CELF evals = %d, laziness ineffective", res.Evals)
	}
}

func TestCELFErrors(t *testing.T) {
	m, _ := starModel(t)
	if _, err := CELFGreedy(m, topic.Dist{1}, 0, 100, rng.New(1)); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := CELFGreedy(m, topic.Dist{1}, 1, 0, rng.New(1)); err == nil {
		t.Fatal("samples=0 accepted")
	}
}

func TestEstimateSpreads(t *testing.T) {
	m, _ := starModel(t)
	s := EstimateSpreads(m, topic.Dist{1}, []graph.NodeID{0, 16}, 500, 7)
	if len(s) != 2 {
		t.Fatalf("len = %d", len(s))
	}
	if s[1] <= s[0] {
		t.Fatalf("prefix spreads not increasing: %v", s)
	}
	if s[0] < 10 || s[0] > 16 {
		t.Fatalf("σ({0}) = %v, want ~14.5", s[0])
	}
}

func TestOverlap(t *testing.T) {
	a := []graph.NodeID{1, 2, 3}
	b := []graph.NodeID{2, 3, 4, 5}
	if got := Overlap(a, b); got != 0.5 {
		t.Fatalf("Overlap = %v", got)
	}
	if got := Overlap(nil, nil); got != 1 {
		t.Fatalf("Overlap(nil,nil) = %v", got)
	}
	if got := Overlap(a, nil); got != 0 {
		t.Fatalf("Overlap(a,nil) = %v", got)
	}
}

func TestHeuristicsAgreeOnObviousInstance(t *testing.T) {
	// All heuristics should find the hub on the star instance.
	m, w := starModel(t)
	g := m.Graph()
	algos := map[string][]graph.NodeID{
		"degree":    TopDegree(g, 1),
		"wdegree":   TopWeightedDegree(g, w, 1),
		"sdiscount": SingleDiscount(g, w, 1),
		"ddiscount": DegreeDiscount(g, w, 1),
		"pagerank":  PageRank(g, w, 1, 30, 0.85),
	}
	for name, seeds := range algos {
		if len(seeds) != 1 || seeds[0] != 0 {
			t.Fatalf("%s picked %v, want [0]", name, seeds)
		}
	}
}

func BenchmarkDegreeDiscount(b *testing.B) {
	r := rng.New(1)
	const n = 20000
	gb := graph.NewBuilder(n)
	for i := 0; i < n*6; i++ {
		gb.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	g := gb.Build()
	w := make([]float64, g.NumEdges())
	for e := range w {
		w[e] = 0.1 * r.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		DegreeDiscount(g, w, 50)
	}
}

func BenchmarkCELFGreedySmall(b *testing.B) {
	m, _ := starModel(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := CELFGreedy(m, topic.Dist{1}, 2, 100, rng.New(uint64(i))); err != nil {
			b.Fatal(err)
		}
	}
}
