// Package im provides the classical influence-maximization algorithms
// OCTOPUS's introduction cites ([4],[8] and the heuristics literature):
// CELF-accelerated Monte-Carlo greedy, DegreeDiscount, SingleDiscount,
// weighted PageRank and degree/random baselines. The online engines are
// benchmarked against these; the naive per-query baseline of Section I
// ("compute pp_{u,v} for each edge … then employ the traditional IM
// algorithms") composes tic.Model.Weights with one of these algorithms.
package im

import (
	"fmt"
	"math"

	"octopus/internal/graph"
	"octopus/internal/heaps"
	"octopus/internal/obs"
	"octopus/internal/rng"
	"octopus/internal/tic"
	"octopus/internal/topic"
)

// Random returns k distinct uniformly random seeds.
func Random(g *graph.Graph, k int, r *rng.Source) []graph.NodeID {
	n := g.NumNodes()
	if k > n {
		k = n
	}
	idx := r.Sample(n, k)
	out := make([]graph.NodeID, k)
	for i, v := range idx {
		out[i] = graph.NodeID(v)
	}
	return out
}

// TopDegree returns the k nodes with the largest out-degree.
func TopDegree(g *graph.Graph, k int) []graph.NodeID {
	h := heaps.NewMax(g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		h.Push(heaps.Item{ID: int32(u), Key: float64(g.OutDegree(graph.NodeID(u)))})
	}
	return popK(h, k, g.NumNodes())
}

// TopWeightedDegree ranks nodes by the sum of outgoing edge
// probabilities (the expected number of directly activated neighbors).
func TopWeightedDegree(g *graph.Graph, w []float64, k int) []graph.NodeID {
	h := heaps.NewMax(g.NumNodes())
	for u := 0; u < g.NumNodes(); u++ {
		lo, hi := g.OutEdges(graph.NodeID(u))
		s := 0.0
		for e := lo; e < hi; e++ {
			s += w[e]
		}
		h.Push(heaps.Item{ID: int32(u), Key: s})
	}
	return popK(h, k, g.NumNodes())
}

func popK(h *heaps.Max, k, n int) []graph.NodeID {
	if k > n {
		k = n
	}
	out := make([]graph.NodeID, 0, k)
	for len(out) < k && h.Len() > 0 {
		out = append(out, h.Pop().ID)
	}
	return out
}

// SingleDiscount greedily picks high weighted-degree nodes, discounting
// each pick's edges into already-chosen seeds (Chen et al., KDD 2009).
func SingleDiscount(g *graph.Graph, w []float64, k int) []graph.NodeID {
	n := g.NumNodes()
	if k > n {
		k = n
	}
	h := heaps.NewIndexed(n)
	deg := make([]float64, n)
	for u := 0; u < n; u++ {
		lo, hi := g.OutEdges(graph.NodeID(u))
		for e := lo; e < hi; e++ {
			deg[u] += w[e]
		}
		h.Push(int32(u), deg[u])
	}
	chosen := make([]bool, n)
	out := make([]graph.NodeID, 0, k)
	for len(out) < k && h.Len() > 0 {
		u, _ := h.PopMax()
		chosen[u] = true
		out = append(out, u)
		// Discount: every in-neighbor of u loses the edge into u.
		lo, hi := g.InSlots(u)
		for s := lo; s < hi; s++ {
			v := g.InSrc(s)
			if chosen[v] {
				continue
			}
			deg[v] -= w[g.InEdgeID(s)]
			if h.Contains(v) {
				h.Update(v, deg[v])
			}
		}
	}
	return out
}

// DegreeDiscount implements the degree-discount heuristic generalized to
// heterogeneous edge probabilities: a node's score is its remaining
// weighted degree discounted by the probability mass already claimed by
// neighboring seeds.
func DegreeDiscount(g *graph.Graph, w []float64, k int) []graph.NodeID {
	n := g.NumNodes()
	if k > n {
		k = n
	}
	wdeg := make([]float64, n) // Σ out-edge probs
	for u := 0; u < n; u++ {
		lo, hi := g.OutEdges(graph.NodeID(u))
		for e := lo; e < hi; e++ {
			wdeg[u] += w[e]
		}
	}
	// tv[u] = probability u is activated directly by chosen seeds.
	tv := make([]float64, n)
	h := heaps.NewIndexed(n)
	score := func(u int) float64 {
		// Expected additional activations if u seeds: u itself (if not
		// already reached) plus its remaining out mass scaled by the
		// chance u is not already covered.
		return (1 - tv[u]) * (1 + wdeg[u])
	}
	for u := 0; u < n; u++ {
		h.Push(int32(u), score(u))
	}
	chosen := make([]bool, n)
	out := make([]graph.NodeID, 0, k)
	for len(out) < k && h.Len() > 0 {
		u, _ := h.PopMax()
		chosen[u] = true
		out = append(out, u)
		lo, hi := g.OutEdges(u)
		for e := lo; e < hi; e++ {
			v := g.Dst(e)
			if chosen[v] {
				continue
			}
			tv[v] = 1 - (1-tv[v])*(1-w[e])
			h.Update(v, score(int(v)))
		}
		ilo, ihi := g.InSlots(u)
		for s := ilo; s < ihi; s++ {
			v := g.InSrc(s)
			if chosen[v] {
				continue
			}
			wdeg[v] -= w[g.InEdgeID(s)]
			h.Update(v, score(int(v)))
		}
	}
	return out
}

// PageRank ranks nodes by weighted PageRank on the reversed graph, so
// that mass flows toward strong influencers (a node pointed-to by many
// strong edges in the reverse graph is one that points at much of the
// network in the forward graph).
func PageRank(g *graph.Graph, w []float64, k, iters int, damping float64) []graph.NodeID {
	n := g.NumNodes()
	if n == 0 {
		return nil
	}
	if iters <= 0 {
		iters = 30
	}
	if damping <= 0 || damping >= 1 {
		damping = 0.85
	}
	// Out-weight sums on the reversed graph = in-weight sums forward.
	inSum := make([]float64, n)
	for v := 0; v < n; v++ {
		lo, hi := g.InSlots(graph.NodeID(v))
		for s := lo; s < hi; s++ {
			inSum[v] += w[g.InEdgeID(s)]
		}
	}
	pr := make([]float64, n)
	next := make([]float64, n)
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	base := (1 - damping) / float64(n)
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = base
		}
		dangling := 0.0
		for v := 0; v < n; v++ {
			if inSum[v] == 0 {
				dangling += pr[v]
				continue
			}
			share := damping * pr[v] / inSum[v]
			lo, hi := g.InSlots(graph.NodeID(v))
			for s := lo; s < hi; s++ {
				// Reverse edge v -> InSrc(s) with weight w[edge].
				next[g.InSrc(s)] += share * w[g.InEdgeID(s)]
			}
		}
		if dangling > 0 {
			spread := damping * dangling / float64(n)
			for i := range next {
				next[i] += spread
			}
		}
		pr, next = next, pr
	}
	h := heaps.NewMax(n)
	for u := 0; u < n; u++ {
		h.Push(heaps.Item{ID: int32(u), Key: pr[u]})
	}
	return popK(h, k, n)
}

// CELFResult reports greedy selection with per-step spreads.
type CELFResult struct {
	Seeds   []graph.NodeID
	Spreads []float64 // estimated σ after each pick
	Evals   int       // number of spread evaluations performed
}

// CELFGreedy runs lazy-forward greedy (Leskovec et al., KDD 2007) with
// Monte-Carlo spread estimation under the TIC model and γ. samples is
// the cascade count per evaluation. This is the quality-reference
// algorithm; it is far too slow for online use, which is the gap the
// best-effort engine closes.
func CELFGreedy(m *tic.Model, gamma topic.Dist, k, samples int, r *rng.Source) (*CELFResult, error) {
	return CELFGreedyCost(m, gamma, k, samples, r, nil)
}

// CELFGreedyCost is CELFGreedy with work accounting into cost (nil
// disables it): one SpreadEvals per Monte-Carlo spread evaluation, one
// Cascades per simulated cascade.
func CELFGreedyCost(m *tic.Model, gamma topic.Dist, k, samples int, r *rng.Source, cost *obs.Cost) (*CELFResult, error) {
	if k <= 0 {
		return nil, fmt.Errorf("im: k must be positive")
	}
	if samples <= 0 {
		return nil, fmt.Errorf("im: samples must be positive")
	}
	g := m.Graph()
	n := g.NumNodes()
	if k > n {
		k = n
	}
	sim := tic.NewSimulator(m)
	res := &CELFResult{}
	evalSeed := r.Uint64()
	eval := func(seeds []graph.NodeID) float64 {
		if cost != nil {
			cost.IM.SpreadEvals++
			cost.IM.Cascades += uint64(samples)
		}
		// Common random numbers across evaluations reduce comparison noise.
		return sim.EstimateSpread(seeds, gamma, samples, rng.New(evalSeed))
	}

	h := heaps.NewMax(n)
	for u := 0; u < n; u++ {
		s := eval([]graph.NodeID{graph.NodeID(u)})
		res.Evals++
		h.Push(heaps.Item{ID: int32(u), Key: s, Round: 0})
	}
	var cur []graph.NodeID
	curSpread := 0.0
	for len(cur) < k && h.Len() > 0 {
		top := h.Pop()
		if int(top.Round) == len(cur) {
			cur = append(cur, top.ID)
			curSpread += top.Key
			res.Seeds = append(res.Seeds, top.ID)
			res.Spreads = append(res.Spreads, curSpread)
			continue
		}
		gain := eval(append(append([]graph.NodeID(nil), cur...), top.ID)) - curSpread
		res.Evals++
		if gain < 0 {
			gain = 0
		}
		h.Push(heaps.Item{ID: top.ID, Key: gain, Round: int32(len(cur))})
	}
	return res, nil
}

// EstimateSpreads evaluates σ(seeds[:i]) for each prefix using MC, for
// comparing seed-set quality across algorithms at equal k.
func EstimateSpreads(m *tic.Model, gamma topic.Dist, seeds []graph.NodeID, samples int, seed uint64) []float64 {
	sim := tic.NewSimulator(m)
	out := make([]float64, len(seeds))
	for i := 1; i <= len(seeds); i++ {
		out[i-1] = sim.EstimateSpread(seeds[:i], gamma, samples, rng.New(seed))
	}
	return out
}

// Overlap returns |a ∩ b| / max(|a|,|b|) — a quick seed-set similarity
// used in experiments.
func Overlap(a, b []graph.NodeID) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	set := make(map[graph.NodeID]bool, len(a))
	for _, v := range a {
		set[v] = true
	}
	inter := 0
	for _, v := range b {
		if set[v] {
			inter++
		}
	}
	return float64(inter) / math.Max(float64(len(a)), float64(len(b)))
}
