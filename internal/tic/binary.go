package tic

import (
	"fmt"
	"io"

	"octopus/internal/arena"
	"octopus/internal/binio"
	"octopus/internal/graph"
)

// Binary payload format. Version 2 aligns every bulk array on an
// 8-byte boundary and serializes the derived maxP bound, so a
// zero-copy reader aliases all four arrays out of a mapped snapshot
// with no per-edge derivation pass. Version 1 (unaligned, maxP
// recomputed on load) is still read for old snapshots.
const (
	ticBinaryVersion   = 2
	ticBinaryVersionV1 = 1
)

// WriteBinary serializes the model's sparse probability arrays in the
// current (aligned, version 2) format. The graph is serialized
// separately; ReadBinary re-binds to it.
func WriteBinary(w io.Writer, m *Model) error {
	bw := binio.NewWriter(w)
	bw.U8(ticBinaryVersion)
	bw.U32(uint32(m.z))
	bw.U64(uint64(m.g.NumEdges()))
	bw.Align8()
	bw.I32s(m.off)
	bw.Align8()
	bw.U16s(m.topicIdx)
	bw.Align8()
	bw.F32s(m.topicP)
	bw.Align8()
	bw.F32s(m.maxP)
	return bw.Flush()
}

// WriteBinaryV1 emits the legacy version-1 payload, kept for the
// cross-version compatibility tests and downgrade tooling.
func WriteBinaryV1(w io.Writer, m *Model) error {
	bw := binio.NewWriter(w)
	bw.U8(ticBinaryVersionV1)
	bw.U32(uint32(m.z))
	bw.U64(uint64(m.g.NumEdges()))
	bw.I32s(m.off)
	bw.U16s(m.topicIdx)
	bw.F32s(m.topicP)
	return bw.Flush()
}

// ReadBinary parses a payload produced by WriteBinary (any version)
// from a stream, always copying onto the heap, and binds the model to
// g, which must have exactly the edge count recorded in the payload.
func ReadBinary(r io.Reader, g *graph.Graph) (*Model, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("tic: read binary: %w", err)
	}
	return ReadView(arena.NewReader(data), g)
}

// ReadView parses a binary payload through an arena reader. Zero-copy
// mode aliases the probability arrays into the reader's backing bytes
// and skips the O(entries) content revalidation (shape and offset
// checks still run), since mapped snapshots were CRC-framed when
// written.
func ReadView(br *arena.Reader, g *graph.Graph) (*Model, error) {
	version := br.U8()
	if br.Err() == nil && version != ticBinaryVersion && version != ticBinaryVersionV1 {
		return nil, fmt.Errorf("tic: unsupported binary version %d", version)
	}
	z := int(br.U32())
	edges := int(br.U64())
	var off []int32
	var topicIdx []uint16
	var topicP, maxP []float32
	if version == ticBinaryVersionV1 {
		off = br.I32s()
		topicIdx = br.U16s()
		topicP = br.F32s()
	} else {
		br.Align8()
		off = br.I32s()
		br.Align8()
		topicIdx = br.U16s()
		br.Align8()
		topicP = br.F32s()
		br.Align8()
		maxP = br.F32s()
	}
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("tic: read binary: %w", err)
	}
	if z <= 0 || z > 1<<16 {
		return nil, fmt.Errorf("tic: binary payload topic count %d out of range", z)
	}
	if edges != g.NumEdges() {
		return nil, fmt.Errorf("tic: model has %d edges, graph has %d", edges, g.NumEdges())
	}
	if len(off) != edges+1 || len(topicIdx) != len(topicP) {
		return nil, fmt.Errorf("tic: binary payload arrays inconsistent (%d offsets, %d idx, %d p)",
			len(off), len(topicIdx), len(topicP))
	}
	if maxP != nil && len(maxP) != edges {
		return nil, fmt.Errorf("tic: binary payload has %d maxP entries for %d edges", len(maxP), edges)
	}
	if off[0] != 0 || off[edges] != int32(len(topicIdx)) {
		return nil, fmt.Errorf("tic: binary payload offsets span [%d,%d] for %d entries",
			off[0], off[edges], len(topicIdx))
	}
	for e := 0; e < edges; e++ {
		if off[e] > off[e+1] {
			return nil, fmt.Errorf("tic: binary payload offsets not monotone at edge %d", e)
		}
	}
	m := &Model{g: g, z: z, off: off, topicIdx: topicIdx, topicP: topicP, maxP: maxP}
	if br.ZeroCopy() && maxP != nil {
		return m, nil
	}
	// Copying path: validate every entry and (re)derive maxP, exactly
	// as version-1 loads always have. A serialized maxP is cross-checked
	// against the recomputation, catching corrupt-but-well-shaped files.
	derived := make([]float32, edges)
	for e := 0; e < edges; e++ {
		var mx float32
		for i := off[e]; i < off[e+1]; i++ {
			if int(topicIdx[i]) >= z {
				return nil, fmt.Errorf("tic: binary payload topic %d out of range at edge %d", topicIdx[i], e)
			}
			if p := topicP[i]; !(p >= 0 && p <= 1) { // also rejects NaN
				return nil, fmt.Errorf("tic: binary payload probability %v out of [0,1] at edge %d", p, e)
			}
			if topicP[i] > mx {
				mx = topicP[i]
			}
		}
		if maxP != nil && maxP[e] != mx {
			return nil, fmt.Errorf("tic: binary payload maxP[%d]=%v disagrees with entries (%v)", e, maxP[e], mx)
		}
		derived[e] = mx
	}
	m.maxP = derived
	return m, nil
}
