package tic

import (
	"fmt"
	"io"

	"octopus/internal/binio"
	"octopus/internal/graph"
)

// Binary payload format (version 1): the sparse per-edge topic
// probability arrays exactly as stored in memory. Unlike the text
// codec, loading is a straight array copy with no per-line parsing —
// the fast path the snapshot store uses.
const ticBinaryVersion = 1

// WriteBinary serializes the model's sparse probability arrays. The
// graph is serialized separately; ReadBinary re-binds to it.
func WriteBinary(w io.Writer, m *Model) error {
	bw := binio.NewWriter(w)
	bw.U8(ticBinaryVersion)
	bw.U32(uint32(m.z))
	bw.U64(uint64(m.g.NumEdges()))
	bw.I32s(m.off)
	bw.U16s(m.topicIdx)
	bw.F32s(m.topicP)
	return bw.Flush()
}

// ReadBinary parses the payload produced by WriteBinary and binds the
// model to g, which must have exactly the edge count recorded in the
// payload.
func ReadBinary(r io.Reader, g *graph.Graph) (*Model, error) {
	br := binio.NewReader(r)
	if v := br.U8(); br.Err() == nil && v != ticBinaryVersion {
		return nil, fmt.Errorf("tic: unsupported binary version %d", v)
	}
	z := int(br.U32())
	edges := int(br.U64())
	off := br.I32s()
	topicIdx := br.U16s()
	topicP := br.F32s()
	if err := br.Err(); err != nil {
		return nil, fmt.Errorf("tic: read binary: %w", err)
	}
	if z <= 0 || z > 1<<16 {
		return nil, fmt.Errorf("tic: binary payload topic count %d out of range", z)
	}
	if edges != g.NumEdges() {
		return nil, fmt.Errorf("tic: model has %d edges, graph has %d", edges, g.NumEdges())
	}
	if len(off) != edges+1 || len(topicIdx) != len(topicP) {
		return nil, fmt.Errorf("tic: binary payload arrays inconsistent (%d offsets, %d idx, %d p)",
			len(off), len(topicIdx), len(topicP))
	}
	if off[0] != 0 || off[edges] != int32(len(topicIdx)) {
		return nil, fmt.Errorf("tic: binary payload offsets span [%d,%d] for %d entries",
			off[0], off[edges], len(topicIdx))
	}
	m := &Model{g: g, z: z, off: off, topicIdx: topicIdx, topicP: topicP,
		maxP: make([]float32, edges)}
	for e := 0; e < edges; e++ {
		if off[e] > off[e+1] {
			return nil, fmt.Errorf("tic: binary payload offsets not monotone at edge %d", e)
		}
		var mx float32
		for i := off[e]; i < off[e+1]; i++ {
			if int(topicIdx[i]) >= z {
				return nil, fmt.Errorf("tic: binary payload topic %d out of range at edge %d", topicIdx[i], e)
			}
			if p := topicP[i]; !(p >= 0 && p <= 1) { // also rejects NaN
				return nil, fmt.Errorf("tic: binary payload probability %v out of [0,1] at edge %d", p, e)
			}
			if topicP[i] > mx {
				mx = topicP[i]
			}
		}
		m.maxP[e] = mx
	}
	return m, nil
}
