package tic

import (
	"math"
	"testing"
	"testing/quick"

	"octopus/internal/graph"
	"octopus/internal/rng"
	"octopus/internal/topic"
)

// lineModel builds 0->1->2 with topic-dependent probabilities:
// edge (0,1): topic0 = 1.0, topic1 = 0.0
// edge (1,2): topic0 = 0.0, topic1 = 1.0
func lineModel(t *testing.T) *Model {
	t.Helper()
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	mb := NewBuilder(g, 2)
	e01, _ := g.FindEdge(0, 1)
	e12, _ := g.FindEdge(1, 2)
	if err := mb.SetProbs(e01, []float64{1, 0}); err != nil {
		t.Fatal(err)
	}
	if err := mb.SetProbs(e12, []float64{0, 1}); err != nil {
		t.Fatal(err)
	}
	return mb.Build()
}

func TestEdgeProbMixing(t *testing.T) {
	m := lineModel(t)
	e01, _ := m.Graph().FindEdge(0, 1)
	cases := []struct {
		gamma topic.Dist
		want  float64
	}{
		{topic.Dist{1, 0}, 1},
		{topic.Dist{0, 1}, 0},
		{topic.Dist{0.3, 0.7}, 0.3},
	}
	for _, c := range cases {
		if got := m.EdgeProb(e01, c.gamma); math.Abs(got-c.want) > 1e-6 {
			t.Fatalf("EdgeProb(γ=%v) = %v, want %v", c.gamma, got, c.want)
		}
	}
}

func TestMaxProbEnvelope(t *testing.T) {
	m := lineModel(t)
	e01, _ := m.Graph().FindEdge(0, 1)
	e12, _ := m.Graph().FindEdge(1, 2)
	if m.MaxProb(e01) != 1 || m.MaxProb(e12) != 1 {
		t.Fatalf("MaxProb = %v, %v", m.MaxProb(e01), m.MaxProb(e12))
	}
}

func TestTopicProbAndIteration(t *testing.T) {
	m := lineModel(t)
	e01, _ := m.Graph().FindEdge(0, 1)
	if got := m.TopicProb(e01, 0); got != 1 {
		t.Fatalf("TopicProb(e01,0) = %v", got)
	}
	if got := m.TopicProb(e01, 1); got != 0 {
		t.Fatalf("TopicProb(e01,1) = %v", got)
	}
	count := 0
	m.EdgeTopics(e01, func(z int, p float64) {
		count++
		if z != 0 || p != 1 {
			t.Fatalf("EdgeTopics yielded z=%d p=%v", z, p)
		}
	})
	if count != 1 {
		t.Fatalf("EdgeTopics yielded %d entries (sparse zero dropped?)", count)
	}
}

func TestWeights(t *testing.T) {
	m := lineModel(t)
	w := m.Weights(topic.Dist{0.5, 0.5})
	if len(w) != 2 {
		t.Fatalf("weights len = %d", len(w))
	}
	for _, p := range w {
		if math.Abs(p-0.5) > 1e-6 {
			t.Fatalf("weights = %v", w)
		}
	}
	mw := m.MaxWeights()
	if mw[0] != 1 || mw[1] != 1 {
		t.Fatalf("max weights = %v", mw)
	}
}

func TestBuilderValidation(t *testing.T) {
	g := func() *graph.Graph {
		b := graph.NewBuilder(2)
		b.AddEdge(0, 1)
		return b.Build()
	}()
	mb := NewBuilder(g, 2)
	if err := mb.SetProb(0, 5, 0.5); err == nil {
		t.Fatal("topic out of range accepted")
	}
	if err := mb.SetProb(0, 0, 1.5); err == nil {
		t.Fatal("probability > 1 accepted")
	}
	if err := mb.SetProb(0, 0, math.NaN()); err == nil {
		t.Fatal("NaN accepted")
	}
	if err := mb.SetProbs(0, []float64{0.1}); err == nil {
		t.Fatal("short prob vector accepted")
	}
}

func TestSetProbOverwrite(t *testing.T) {
	g := func() *graph.Graph {
		b := graph.NewBuilder(2)
		b.AddEdge(0, 1)
		return b.Build()
	}()
	mb := NewBuilder(g, 2)
	mustSet := func(z int, p float64) {
		t.Helper()
		if err := mb.SetProb(0, z, p); err != nil {
			t.Fatal(err)
		}
	}
	mustSet(0, 0.3)
	mustSet(0, 0.8) // overwrite
	m := mb.Build()
	if got := m.TopicProb(0, 0); got != float64(float32(0.8)) {
		t.Fatalf("TopicProb after overwrite = %v", got)
	}
}

func TestCascadeDeterministicTopics(t *testing.T) {
	m := lineModel(t)
	sim := NewSimulator(m)
	r := rng.New(1)
	// Pure topic 0: edge 0->1 fires always, 1->2 never. Spread = 2.
	for i := 0; i < 20; i++ {
		if got := sim.Cascade([]graph.NodeID{0}, topic.Dist{1, 0}, r, nil); got != 2 {
			t.Fatalf("pure-topic-0 cascade = %d, want 2", got)
		}
	}
	// Pure topic 1: edge 0->1 never fires. Spread = 1.
	for i := 0; i < 20; i++ {
		if got := sim.Cascade([]graph.NodeID{0}, topic.Dist{0, 1}, r, nil); got != 1 {
			t.Fatalf("pure-topic-1 cascade = %d, want 1", got)
		}
	}
	// Seeding node 1 under topic 1 reaches 2.
	if got := sim.Cascade([]graph.NodeID{1}, topic.Dist{0, 1}, r, nil); got != 2 {
		t.Fatalf("seed-1 cascade = %d, want 2", got)
	}
}

func TestCascadeTrace(t *testing.T) {
	m := lineModel(t)
	sim := NewSimulator(m)
	r := rng.New(1)
	type act struct{ u, v graph.NodeID }
	var acts []act
	sim.Cascade([]graph.NodeID{0}, topic.Dist{1, 0}, r, func(u, v graph.NodeID, e graph.EdgeID) {
		acts = append(acts, act{u, v})
		if m.Graph().Dst(e) != v {
			t.Fatalf("trace edge mismatch")
		}
	})
	if len(acts) != 1 || acts[0] != (act{0, 1}) {
		t.Fatalf("trace = %v", acts)
	}
}

func TestCascadeDuplicateSeeds(t *testing.T) {
	m := lineModel(t)
	sim := NewSimulator(m)
	r := rng.New(2)
	if got := sim.Cascade([]graph.NodeID{0, 0, 0}, topic.Dist{0, 1}, r, nil); got != 1 {
		t.Fatalf("duplicate seeds counted: %d", got)
	}
}

func TestEstimateSpreadProbabilistic(t *testing.T) {
	// Star: 0 -> 1..10, each edge p=0.5 in topic 0.
	b := graph.NewBuilder(11)
	for v := int32(1); v <= 10; v++ {
		b.AddEdge(0, v)
	}
	g := b.Build()
	mb := NewBuilder(g, 1)
	for e := 0; e < g.NumEdges(); e++ {
		if err := mb.SetProb(graph.EdgeID(e), 0, 0.5); err != nil {
			t.Fatal(err)
		}
	}
	m := mb.Build()
	sim := NewSimulator(m)
	got := sim.EstimateSpread([]graph.NodeID{0}, topic.Dist{1}, 20000, rng.New(7))
	want := 1 + 10*0.5
	if math.Abs(got-want) > 0.15 {
		t.Fatalf("spread = %v, want ~%v", got, want)
	}
}

func TestEstimateSpreadZeroSamples(t *testing.T) {
	m := lineModel(t)
	sim := NewSimulator(m)
	if got := sim.EstimateSpread([]graph.NodeID{0}, topic.Dist{1, 0}, 0, rng.New(1)); got != 0 {
		t.Fatalf("zero samples spread = %v", got)
	}
}

func TestCascadeWeightedMatchesCascade(t *testing.T) {
	m := lineModel(t)
	gamma := topic.Dist{0.6, 0.4}
	w := m.Weights(gamma)
	s1, s2 := NewSimulator(m), NewSimulator(m)
	r1, r2 := rng.New(99), rng.New(99)
	for i := 0; i < 200; i++ {
		a := s1.Cascade([]graph.NodeID{0}, gamma, r1, nil)
		b := s2.CascadeWeighted([]graph.NodeID{0}, w, r2)
		if a != b {
			t.Fatalf("iteration %d: Cascade=%d CascadeWeighted=%d", i, a, b)
		}
	}
}

func TestSimulatorEpochWrap(t *testing.T) {
	m := lineModel(t)
	sim := NewSimulator(m)
	sim.epoch = ^uint32(0) - 1
	r := rng.New(5)
	for i := 0; i < 4; i++ { // crosses the wrap point
		if got := sim.Cascade([]graph.NodeID{0}, topic.Dist{1, 0}, r, nil); got != 2 {
			t.Fatalf("cascade during wrap = %d", got)
		}
	}
}

// Property: spread is monotone in γ along the direction of an edge's
// strong topic — more weight on topic 0 can only help on a topic-0 graph.
func TestQuickSpreadMonotoneInGamma(t *testing.T) {
	b := graph.NewBuilder(30)
	r := rng.New(11)
	for i := 0; i < 90; i++ {
		b.AddEdge(int32(r.Intn(30)), int32(r.Intn(30)))
	}
	g := b.Build()
	mb := NewBuilder(g, 2)
	for e := 0; e < g.NumEdges(); e++ {
		// topic 0 always at least as strong as topic 1
		p1 := r.Float64() * 0.5
		p0 := p1 + r.Float64()*0.5
		if err := mb.SetProbs(graph.EdgeID(e), []float64{p0, p1}); err != nil {
			t.Fatal(err)
		}
	}
	m := mb.Build()
	sim := NewSimulator(m)
	f := func(seed uint64) bool {
		rr := rng.New(seed)
		a := rr.Float64()
		bw := rr.Float64()
		lo, hi := a, bw
		if lo > hi {
			lo, hi = hi, lo
		}
		// γhi puts more mass on topic 0 than γlo.
		gLo := topic.Dist{lo, 1 - lo}
		gHi := topic.Dist{hi, 1 - hi}
		sLo := sim.EstimateSpread([]graph.NodeID{0}, gLo, 600, rng.New(seed^1))
		sHi := sim.EstimateSpread([]graph.NodeID{0}, gHi, 600, rng.New(seed^1))
		return sHi >= sLo-0.75 // MC noise tolerance
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: EdgeProb is within [0, MaxProb] for any γ.
func TestQuickEdgeProbBounds(t *testing.T) {
	b := graph.NewBuilder(10)
	r := rng.New(13)
	for i := 0; i < 40; i++ {
		b.AddEdge(int32(r.Intn(10)), int32(r.Intn(10)))
	}
	g := b.Build()
	const z = 5
	mb := NewBuilder(g, z)
	for e := 0; e < g.NumEdges(); e++ {
		for zi := 0; zi < z; zi++ {
			if err := mb.SetProb(graph.EdgeID(e), zi, r.Float64()); err != nil {
				t.Fatal(err)
			}
		}
	}
	m := mb.Build()
	f := func(seed uint64) bool {
		gamma := topic.Dist(rng.New(seed).DirichletSym(0.7, z))
		for e := 0; e < g.NumEdges(); e++ {
			p := m.EdgeProb(graph.EdgeID(e), gamma)
			if p < 0 || p > m.MaxProb(graph.EdgeID(e))+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func benchModel(b *testing.B, n, deg, z int) *Model {
	b.Helper()
	r := rng.New(1)
	gb := graph.NewBuilder(n)
	for i := 0; i < n*deg; i++ {
		gb.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	g := gb.Build()
	mb := NewBuilder(g, z)
	for e := 0; e < g.NumEdges(); e++ {
		for k := 0; k < 3; k++ { // sparse: 3 of z topics
			_ = mb.SetProb(graph.EdgeID(e), r.Intn(z), 0.05+0.1*r.Float64())
		}
	}
	return mb.Build()
}

func BenchmarkCascade(b *testing.B) {
	m := benchModel(b, 10000, 8, 8)
	sim := NewSimulator(m)
	gamma := topic.Uniform(8)
	r := rng.New(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Cascade([]graph.NodeID{int32(i % 10000)}, gamma, r, nil)
	}
}

func BenchmarkWeights(b *testing.B) {
	m := benchModel(b, 10000, 8, 8)
	gamma := topic.Uniform(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := m.Weights(gamma)
		_ = w
	}
}
