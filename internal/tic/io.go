package tic

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"octopus/internal/graph"
)

// Write serializes the model's per-edge topic probabilities in a
// line-oriented text format:
//
//	ticmodel <numTopics> <numEdges>
//	e <edgeID> <z>:<p> [<z>:<p> ...]
//
// Edges with no non-zero topic probabilities are omitted. The graph
// itself is serialized separately (graph.WriteText); Read re-binds the
// probabilities to a compatible graph.
func Write(w io.Writer, m *Model) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "ticmodel %d %d\n", m.z, m.g.NumEdges()); err != nil {
		return err
	}
	for e := 0; e < m.g.NumEdges(); e++ {
		lo, hi := m.off[e], m.off[e+1]
		if lo == hi {
			continue
		}
		if _, err := fmt.Fprintf(bw, "e %d", e); err != nil {
			return err
		}
		for i := lo; i < hi; i++ {
			if _, err := fmt.Fprintf(bw, " %d:%g", m.topicIdx[i], m.topicP[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses the format produced by Write and binds the model to g,
// which must have exactly the edge count recorded in the header.
func Read(r io.Reader, g *graph.Graph) (*Model, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	if !sc.Scan() {
		return nil, fmt.Errorf("tic: empty model stream")
	}
	header := strings.Fields(sc.Text())
	if len(header) != 3 || header[0] != "ticmodel" {
		return nil, fmt.Errorf("tic: malformed header %q", sc.Text())
	}
	z, err1 := strconv.Atoi(header[1])
	edges, err2 := strconv.Atoi(header[2])
	if err1 != nil || err2 != nil || z <= 0 {
		return nil, fmt.Errorf("tic: malformed header %q", sc.Text())
	}
	if edges != g.NumEdges() {
		return nil, fmt.Errorf("tic: model has %d edges, graph has %d", edges, g.NumEdges())
	}
	b := NewBuilder(g, z)
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if fields[0] != "e" || len(fields) < 3 {
			return nil, fmt.Errorf("tic: line %d: malformed edge record", lineNo)
		}
		eid, err := strconv.Atoi(fields[1])
		if err != nil || eid < 0 || eid >= edges {
			return nil, fmt.Errorf("tic: line %d: bad edge id %q", lineNo, fields[1])
		}
		for _, pair := range fields[2:] {
			zi, pv, ok := strings.Cut(pair, ":")
			if !ok {
				return nil, fmt.Errorf("tic: line %d: malformed pair %q", lineNo, pair)
			}
			zv, err1 := strconv.Atoi(zi)
			p, err2 := strconv.ParseFloat(pv, 64)
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("tic: line %d: malformed pair %q", lineNo, pair)
			}
			if err := b.SetProb(graph.EdgeID(eid), zv, p); err != nil {
				return nil, fmt.Errorf("tic: line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tic: read: %w", err)
	}
	return b.Build(), nil
}
