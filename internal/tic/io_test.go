package tic

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"octopus/internal/graph"
	"octopus/internal/rng"
	"octopus/internal/topic"
)

func TestModelRoundTrip(t *testing.T) {
	m := lineModel(t)
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf, m.Graph())
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumTopics() != m.NumTopics() {
		t.Fatalf("topics: %d vs %d", m2.NumTopics(), m.NumTopics())
	}
	for e := 0; e < m.Graph().NumEdges(); e++ {
		for z := 0; z < m.NumTopics(); z++ {
			a, b := m.TopicProb(graph.EdgeID(e), z), m2.TopicProb(graph.EdgeID(e), z)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("edge %d topic %d: %v vs %v", e, z, a, b)
			}
		}
		if m.MaxProb(graph.EdgeID(e)) != m2.MaxProb(graph.EdgeID(e)) {
			t.Fatalf("edge %d max prob differs", e)
		}
	}
}

func TestModelReadErrors(t *testing.T) {
	g := func() *graph.Graph {
		b := graph.NewBuilder(2)
		b.AddEdge(0, 1)
		return b.Build()
	}()
	cases := []string{
		"",
		"wrong 2 1",
		"ticmodel x 1",
		"ticmodel 2 5",          // edge count mismatch (graph has 1)
		"ticmodel 2 1\ne 0",     // no pairs
		"ticmodel 2 1\ne 9 0:1", // edge out of range
		"ticmodel 2 1\ne 0 bad",
		"ticmodel 2 1\ne 0 0:2.5", // probability out of range
		"ticmodel 2 1\ne 0 7:0.5", // topic out of range
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c), g); err == nil {
			t.Fatalf("Read(%q) succeeded", c)
		}
	}
}

func TestModelRoundTripQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(15)
		gb := graph.NewBuilder(n)
		for i := 0; i < n*3; i++ {
			gb.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
		}
		g := gb.Build()
		z := 2 + r.Intn(5)
		mb := NewBuilder(g, z)
		for e := 0; e < g.NumEdges(); e++ {
			for k := 0; k < 2; k++ {
				if err := mb.SetProb(graph.EdgeID(e), r.Intn(z), r.Float64()); err != nil {
					return false
				}
			}
		}
		m := mb.Build()
		var buf bytes.Buffer
		if Write(&buf, m) != nil {
			return false
		}
		m2, err := Read(&buf, g)
		if err != nil {
			return false
		}
		gamma := topic.Uniform(z)
		for e := 0; e < g.NumEdges(); e++ {
			if math.Abs(m.EdgeProb(graph.EdgeID(e), gamma)-m2.EdgeProb(graph.EdgeID(e), gamma)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
