package tic

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"octopus/internal/graph"
	"octopus/internal/rng"
	"octopus/internal/topic"
)

func TestModelRoundTrip(t *testing.T) {
	m := lineModel(t)
	var buf bytes.Buffer
	if err := Write(&buf, m); err != nil {
		t.Fatal(err)
	}
	m2, err := Read(&buf, m.Graph())
	if err != nil {
		t.Fatal(err)
	}
	if m2.NumTopics() != m.NumTopics() {
		t.Fatalf("topics: %d vs %d", m2.NumTopics(), m.NumTopics())
	}
	for e := 0; e < m.Graph().NumEdges(); e++ {
		for z := 0; z < m.NumTopics(); z++ {
			a, b := m.TopicProb(graph.EdgeID(e), z), m2.TopicProb(graph.EdgeID(e), z)
			if math.Abs(a-b) > 1e-12 {
				t.Fatalf("edge %d topic %d: %v vs %v", e, z, a, b)
			}
		}
		if m.MaxProb(graph.EdgeID(e)) != m2.MaxProb(graph.EdgeID(e)) {
			t.Fatalf("edge %d max prob differs", e)
		}
	}
}

func TestModelReadErrors(t *testing.T) {
	g := func() *graph.Graph {
		b := graph.NewBuilder(2)
		b.AddEdge(0, 1)
		return b.Build()
	}()
	cases := []string{
		"",
		"wrong 2 1",
		"ticmodel x 1",
		"ticmodel 2 5",          // edge count mismatch (graph has 1)
		"ticmodel 2 1\ne 0",     // no pairs
		"ticmodel 2 1\ne 9 0:1", // edge out of range
		"ticmodel 2 1\ne 0 bad",
		"ticmodel 2 1\ne 0 0:2.5", // probability out of range
		"ticmodel 2 1\ne 0 7:0.5", // topic out of range
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c), g); err == nil {
			t.Fatalf("Read(%q) succeeded", c)
		}
	}
}

// remappedModel carries lineModel through Remap onto a grown graph —
// one extra node, one extra edge with an explicit prior, mirroring what
// a streaming fold produces. It returns the remapped model and the
// prior assigned to the new edge (2,3).
func remappedModel(t *testing.T) (*Model, []float64) {
	t.Helper()
	m := lineModel(t)
	gb := graph.NewBuilder(m.Graph().NumNodes())
	gb.AddGraph(m.Graph())
	gb.AddEdge(2, 3) // grows the graph to 4 nodes
	grown := gb.Build()
	prior := []float64{0.25, 0.125}
	m2, err := Remap(m, grown, func(u, v graph.NodeID) []float64 {
		if u == 2 && v == 3 {
			return prior
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return m2, prior
}

// TestRemappedModelRoundTrip exercises the text codec on a model that
// went through Remap onto a grown graph — the state a live fold leaves
// behind, which the original round-trip tests never covered.
func TestRemappedModelRoundTrip(t *testing.T) {
	m2, prior := remappedModel(t)
	var buf bytes.Buffer
	if err := Write(&buf, m2); err != nil {
		t.Fatal(err)
	}
	m3, err := Read(&buf, m2.Graph())
	if err != nil {
		t.Fatal(err)
	}
	assertModelsEqual(t, m2, m3, prior)
}

// TestRemappedModelBinaryRoundTrip is the same through the binary codec
// used by the snapshot store.
func TestRemappedModelBinaryRoundTrip(t *testing.T) {
	m2, prior := remappedModel(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m2); err != nil {
		t.Fatal(err)
	}
	m3, err := ReadBinary(&buf, m2.Graph())
	if err != nil {
		t.Fatal(err)
	}
	assertModelsEqual(t, m2, m3, prior)
	// Binary rejects a graph with a different edge count.
	var buf2 bytes.Buffer
	if err := WriteBinary(&buf2, m2); err != nil {
		t.Fatal(err)
	}
	small := lineModel(t).Graph()
	if _, err := ReadBinary(&buf2, small); err == nil {
		t.Fatal("binary read bound to wrong graph succeeded")
	}
}

func assertModelsEqual(t *testing.T, want, got *Model, newEdgePrior []float64) {
	t.Helper()
	if got.NumTopics() != want.NumTopics() {
		t.Fatalf("topics: %d vs %d", got.NumTopics(), want.NumTopics())
	}
	g := want.Graph()
	for e := 0; e < g.NumEdges(); e++ {
		for z := 0; z < want.NumTopics(); z++ {
			a, b := want.TopicProb(graph.EdgeID(e), z), got.TopicProb(graph.EdgeID(e), z)
			if math.Abs(a-b) > 1e-9 {
				t.Fatalf("edge %d topic %d: %v vs %v", e, z, a, b)
			}
		}
		if want.MaxProb(graph.EdgeID(e)) != got.MaxProb(graph.EdgeID(e)) {
			t.Fatalf("edge %d max prob differs", e)
		}
	}
	// The fold-added edge carries its prior through the codec.
	eNew, ok := g.FindEdge(2, 3)
	if !ok {
		t.Fatal("grown edge (2,3) missing")
	}
	for z, p := range newEdgePrior {
		if math.Abs(got.TopicProb(eNew, z)-p) > 1e-6 {
			t.Fatalf("new edge prior topic %d = %v, want %v", z, got.TopicProb(eNew, z), p)
		}
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	m := lineModel(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, m); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for cut := 0; cut < len(full); cut += 3 {
		if _, err := ReadBinary(bytes.NewReader(full[:cut]), m.Graph()); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestModelRoundTripQuick(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 3 + r.Intn(15)
		gb := graph.NewBuilder(n)
		for i := 0; i < n*3; i++ {
			gb.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
		}
		g := gb.Build()
		z := 2 + r.Intn(5)
		mb := NewBuilder(g, z)
		for e := 0; e < g.NumEdges(); e++ {
			for k := 0; k < 2; k++ {
				if err := mb.SetProb(graph.EdgeID(e), r.Intn(z), r.Float64()); err != nil {
					return false
				}
			}
		}
		m := mb.Build()
		var buf bytes.Buffer
		if Write(&buf, m) != nil {
			return false
		}
		m2, err := Read(&buf, g)
		if err != nil {
			return false
		}
		gamma := topic.Uniform(z)
		for e := 0; e < g.NumEdges(); e++ {
			if math.Abs(m.EdgeProb(graph.EdgeID(e), gamma)-m2.EdgeProb(graph.EdgeID(e), gamma)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
