// Package tic implements the topic-aware independent cascade (TIC)
// propagation model of Barbieri et al. that OCTOPUS builds on
// (Section II-B): every edge e carries activation probabilities ppᶻ_e over
// Z topics, an item is a topic distribution γ, and the effective IC
// probability of e under γ is p_e(γ) = Σ_z γ_z·ppᶻ_e.
//
// Per-edge topic probabilities are stored sparsely (most edges are active
// in a handful of topics) in a CSR-like layout aligned with graph edge
// ids. The package also provides the Monte-Carlo cascade machinery used
// by the naive baselines and by ground-truth spread measurement.
package tic

import (
	"fmt"
	"math"

	"octopus/internal/graph"
	"octopus/internal/rng"
	"octopus/internal/topic"
)

// Model binds a graph to per-edge per-topic activation probabilities.
// Immutable after Build; safe for concurrent readers.
type Model struct {
	g *graph.Graph
	z int

	// Sparse per-edge probabilities: entries for edge e live in
	// [off[e], off[e+1]).
	off      []int32
	topicIdx []uint16
	topicP   []float32

	// maxP[e] = max_z ppᶻ_e — the upper envelope used by every bound in
	// the online engines (spread is monotone in edge probabilities).
	maxP []float32
}

// Graph returns the underlying graph.
func (m *Model) Graph() *graph.Graph { return m.g }

// NumTopics returns Z.
func (m *Model) NumTopics() int { return m.z }

// EdgeProb returns p_e(γ) = Σ_z γ_z·ppᶻ_e.
func (m *Model) EdgeProb(e graph.EdgeID, gamma topic.Dist) float64 {
	p := 0.0
	for i := m.off[e]; i < m.off[e+1]; i++ {
		p += gamma[m.topicIdx[i]] * float64(m.topicP[i])
	}
	if p > 1 {
		p = 1
	}
	return p
}

// MaxProb returns the upper envelope p̄_e = max_z ppᶻ_e.
func (m *Model) MaxProb(e graph.EdgeID) float64 { return float64(m.maxP[e]) }

// TopicProb returns ppᶻ_e for a single topic.
func (m *Model) TopicProb(e graph.EdgeID, z int) float64 {
	for i := m.off[e]; i < m.off[e+1]; i++ {
		if int(m.topicIdx[i]) == z {
			return float64(m.topicP[i])
		}
	}
	return 0
}

// EdgeTopics calls fn for every non-zero topic probability of edge e.
func (m *Model) EdgeTopics(e graph.EdgeID, fn func(z int, p float64)) {
	for i := m.off[e]; i < m.off[e+1]; i++ {
		fn(int(m.topicIdx[i]), float64(m.topicP[i]))
	}
}

// Weights materializes p_e(γ) for every edge — the expensive step the
// naive query baseline must pay per query (Section I: "a straightforward
// solution … is extremely expensive"). The result is indexed by EdgeID.
func (m *Model) Weights(gamma topic.Dist) []float64 {
	w := make([]float64, m.g.NumEdges())
	for e := range w {
		w[e] = m.EdgeProb(graph.EdgeID(e), gamma)
	}
	return w
}

// MaxWeights returns the upper-envelope weights p̄ for every edge.
func (m *Model) MaxWeights() []float64 {
	w := make([]float64, m.g.NumEdges())
	for e := range w {
		w[e] = float64(m.maxP[e])
	}
	return w
}

// Builder accumulates per-edge topic probabilities for a fixed graph.
type Builder struct {
	g       *graph.Graph
	z       int
	entries [][]entry // per edge
}

type entry struct {
	z uint16
	p float32
}

// NewBuilder creates a Builder for graph g with z topics.
func NewBuilder(g *graph.Graph, z int) *Builder {
	if z <= 0 || z > 1<<16 {
		panic("tic: topic count out of range")
	}
	return &Builder{g: g, z: z, entries: make([][]entry, g.NumEdges())}
}

// SetProb sets ppᶻ_e (overwrites any previous value for that topic).
func (b *Builder) SetProb(e graph.EdgeID, z int, p float64) error {
	if z < 0 || z >= b.z {
		return fmt.Errorf("tic: topic %d out of range [0,%d)", z, b.z)
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return fmt.Errorf("tic: probability %v out of [0,1]", p)
	}
	for i := range b.entries[e] {
		if int(b.entries[e][i].z) == z {
			b.entries[e][i].p = float32(p)
			return nil
		}
	}
	if p == 0 {
		return nil // sparse: zero entries are implicit
	}
	b.entries[e] = append(b.entries[e], entry{uint16(z), float32(p)})
	return nil
}

// SetProbs sets a dense probability vector for edge e.
func (b *Builder) SetProbs(e graph.EdgeID, probs []float64) error {
	if len(probs) != b.z {
		return fmt.Errorf("tic: %d probs for %d topics", len(probs), b.z)
	}
	b.entries[e] = b.entries[e][:0]
	for z, p := range probs {
		if err := b.SetProb(e, z, p); err != nil {
			return err
		}
	}
	return nil
}

// Build finalizes the model.
func (b *Builder) Build() *Model {
	m := &Model{
		g:    b.g,
		z:    b.z,
		off:  make([]int32, b.g.NumEdges()+1),
		maxP: make([]float32, b.g.NumEdges()),
	}
	total := 0
	for _, es := range b.entries {
		total += len(es)
	}
	m.topicIdx = make([]uint16, 0, total)
	m.topicP = make([]float32, 0, total)
	for e, es := range b.entries {
		m.off[e] = int32(len(m.topicIdx))
		var mx float32
		for _, en := range es {
			m.topicIdx = append(m.topicIdx, en.z)
			m.topicP = append(m.topicP, en.p)
			if en.p > mx {
				mx = en.p
			}
		}
		m.maxP[e] = mx
	}
	m.off[b.g.NumEdges()] = int32(len(m.topicIdx))
	return m
}

// Remap rebuilds m's per-edge topic probabilities onto a different graph
// newG, matching edges by their (src,dst) endpoints. Edges of newG that
// also exist in m's graph copy their probabilities; edges absent from it
// (new edges, or edges whose endpoints exceed the old node count) get
// the probabilities returned by fallback, or all-zero when fallback is
// nil or returns nil. Edges of m's graph missing from newG are dropped.
//
// This is the core of both snapshot folding in the streaming subsystem
// (extend a learned model to a grown graph, priors for the new edges)
// and holdout experiments (restrict a model to a subgraph).
func Remap(m *Model, newG *graph.Graph, fallback func(u, v graph.NodeID) []float64) (*Model, error) {
	oldG := m.g
	oldN := graph.NodeID(oldG.NumNodes())
	b := NewBuilder(newG, m.z)
	var err error
	fill := func(e graph.EdgeID, u, v graph.NodeID) {
		if fallback == nil {
			return
		}
		if probs := fallback(u, v); probs != nil {
			err = b.SetProbs(e, probs)
		}
	}
	// Per-source merge walk: both CSRs keep a node's out-neighbors
	// sorted ascending, so matching edges by endpoints is a linear scan
	// — no per-edge binary search over the old graph.
	newN := graph.NodeID(newG.NumNodes())
	for u := graph.NodeID(0); u < newN && err == nil; u++ {
		lo, hi := newG.OutEdges(u)
		if u >= oldN {
			for e := lo; e < hi; e++ {
				fill(e, u, newG.Dst(e))
				if err != nil {
					break
				}
			}
			continue
		}
		olo, ohi := oldG.OutEdges(u)
		for e := lo; e < hi && err == nil; e++ {
			v := newG.Dst(e)
			for olo < ohi && oldG.Dst(olo) < v {
				olo++ // old edge absent from newG: dropped
			}
			if olo < ohi && oldG.Dst(olo) == v {
				m.EdgeTopics(olo, func(z int, p float64) {
					if err == nil {
						err = b.SetProb(e, z, p)
					}
				})
				olo++
				continue
			}
			fill(e, u, v)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("tic: remap: %w", err)
	}
	return b.Build(), nil
}

// Simulator holds reusable state for IC cascade simulation. Not safe for
// concurrent use; create one per goroutine (Clone is cheap).
type Simulator struct {
	m     *Model
	stamp []uint32
	epoch uint32
	queue []graph.NodeID
}

// NewSimulator returns a Simulator for model m.
func NewSimulator(m *Model) *Simulator {
	return &Simulator{m: m, stamp: make([]uint32, m.g.NumNodes()), epoch: 0}
}

// Clone returns an independent Simulator sharing the immutable model.
func (s *Simulator) Clone() *Simulator { return NewSimulator(s.m) }

// Cascade runs one IC simulation from seeds under γ and returns the
// number of activated nodes (including seeds). If trace is non-nil it is
// called for every successful activation edge (u,v,e).
func (s *Simulator) Cascade(seeds []graph.NodeID, gamma topic.Dist, r *rng.Source,
	trace func(u, v graph.NodeID, e graph.EdgeID)) int {

	s.epoch++
	if s.epoch == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	g := s.m.g
	q := s.queue[:0]
	for _, u := range seeds {
		if s.stamp[u] != s.epoch {
			s.stamp[u] = s.epoch
			q = append(q, u)
		}
	}
	activated := len(q)
	for i := 0; i < len(q); i++ {
		u := q[i]
		lo, hi := g.OutEdges(u)
		for e := lo; e < hi; e++ {
			v := g.Dst(e)
			if s.stamp[v] == s.epoch {
				continue
			}
			if r.Float64() < s.m.EdgeProb(e, gamma) {
				s.stamp[v] = s.epoch
				q = append(q, v)
				activated++
				if trace != nil {
					trace(u, v, e)
				}
			}
		}
	}
	s.queue = q
	return activated
}

// CascadeWeighted is Cascade with pre-materialized edge weights (used by
// the naive baseline after it pays the Weights cost).
func (s *Simulator) CascadeWeighted(seeds []graph.NodeID, w []float64, r *rng.Source) int {
	s.epoch++
	if s.epoch == 0 {
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.epoch = 1
	}
	g := s.m.g
	q := s.queue[:0]
	for _, u := range seeds {
		if s.stamp[u] != s.epoch {
			s.stamp[u] = s.epoch
			q = append(q, u)
		}
	}
	activated := len(q)
	for i := 0; i < len(q); i++ {
		u := q[i]
		lo, hi := g.OutEdges(u)
		for e := lo; e < hi; e++ {
			v := g.Dst(e)
			if s.stamp[v] == s.epoch {
				continue
			}
			if r.Float64() < w[e] {
				s.stamp[v] = s.epoch
				q = append(q, v)
				activated++
			}
		}
	}
	s.queue = q
	return activated
}

// EstimateSpread returns the Monte-Carlo estimate of σ_γ(seeds) over the
// given number of cascade samples.
func (s *Simulator) EstimateSpread(seeds []graph.NodeID, gamma topic.Dist,
	samples int, r *rng.Source) float64 {

	if samples <= 0 {
		return 0
	}
	total := 0
	for i := 0; i < samples; i++ {
		total += s.Cascade(seeds, gamma, r, nil)
	}
	return float64(total) / float64(samples)
}
