// Package par provides the shared bounded worker-pool helpers behind
// the offline build pipeline (em, otim, tags), modeled on
// ris.GenerateParallel: bounded fan-out with deterministic merges, so a
// parallel build is bit-identical to a serial one for a fixed seed.
//
// Two primitives cover every build stage:
//
//   - Each — embarrassingly parallel loops whose iterations write to
//     disjoint locations (per-node MIOA spreads, per-node aggregate
//     rows, per-sample seed sets, per-poll reverse trees). Iteration
//     order is irrelevant, so work is handed out dynamically.
//   - OrderedMerge — fan-out with a floating-point reduction, where the
//     merge order decides the result (EM accumulator chunks). Items are
//     processed concurrently but merged strictly in item order, so the
//     reduction performs the exact same additions in the exact same
//     order for every worker count.
//
// Both treat a Workers knob uniformly: 0 means one worker per
// GOMAXPROCS slot, 1 forces serial execution, n > 1 bounds the fan-out
// at n goroutines.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Resolve normalizes a Workers knob: values ≤ 0 resolve to
// GOMAXPROCS(0) (one worker per schedulable core), anything else is
// returned unchanged.
func Resolve(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Each calls fn(w, i) for every i in [0, n), fanning out across
// Resolve(workers) goroutines and blocking until all calls return. The
// worker index w (0 ≤ w < Resolve(workers)) identifies the goroutine,
// so callers can hand each worker its own scratch state (a mia.Calc, an
// otim.Engine, …). Work is dealt dynamically in contiguous chunks;
// iterations must write only to locations disjoint per i — under that
// contract the outcome is identical for every worker count.
func Each(workers, n int, fn func(w, i int)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	// Chunked dynamic scheduling: cheap enough for fine-grained items,
	// balanced enough for skewed ones (a hub node's Dijkstra can cost
	// 100× a leaf's).
	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				hi := int(next.Add(int64(chunk)))
				lo := hi - chunk
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(w, i)
				}
			}
		}(w)
	}
	wg.Wait()
}

// OrderedMerge runs process(w, i) for every i in [0, n) across
// Resolve(workers) goroutines and hands each result to merge(i, v)
// strictly in increasing i — never concurrently — regardless of
// completion order. Because the serial path performs the identical
// sequence process(0), merge(0), process(1), merge(1), …, a
// non-associative (floating-point) reduction in merge yields the same
// bits for every worker count.
//
// At most 2×workers results are in flight at once: workers stall
// claiming item i until i < merged+2×workers, so memory stays bounded
// even when an early item straggles. merge runs under the pool's lock
// (on whichever worker completed the gap item), so it should be cheap
// relative to process.
func OrderedMerge[T any](workers, n int, process func(w, i int) T, merge func(i int, v T)) {
	if n <= 0 {
		return
	}
	workers = Resolve(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			merge(i, process(0, i))
		}
		return
	}
	window := 2 * workers
	var mu sync.Mutex
	claimable := sync.NewCond(&mu)
	vals := make([]T, window)
	ready := make([]bool, window)
	next, merged := 0, 0
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				mu.Lock()
				for next < n && next-merged >= window {
					claimable.Wait()
				}
				if next >= n {
					mu.Unlock()
					return
				}
				i := next
				next++
				mu.Unlock()

				v := process(w, i)

				mu.Lock()
				vals[i%window], ready[i%window] = v, true
				// Drain the contiguous ready prefix in order. Only the
				// worker that filled the gap at `merged` enters this loop,
				// so merge is serial.
				for merged < n && ready[merged%window] {
					mv := vals[merged%window]
					ready[merged%window] = false
					var zero T
					vals[merged%window] = zero
					merge(merged, mv)
					merged++
				}
				claimable.Broadcast()
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
}
