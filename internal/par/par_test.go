package par

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestResolve(t *testing.T) {
	if got := Resolve(0); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(0) = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	if got := Resolve(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("Resolve(-3) = %d", got)
	}
	if got := Resolve(5); got != 5 {
		t.Fatalf("Resolve(5) = %d", got)
	}
}

func TestEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 7, 16} {
		for _, n := range []int{0, 1, 5, 100, 1000} {
			hits := make([]atomic.Int32, n)
			Each(workers, n, func(w, i int) {
				if w < 0 || w >= Resolve(workers) {
					t.Errorf("worker index %d out of range", w)
				}
				hits[i].Add(1)
			})
			for i := range hits {
				if hits[i].Load() != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, hits[i].Load())
				}
			}
		}
	}
}

func TestEachDisjointWritesDeterministic(t *testing.T) {
	n := 500
	want := make([]int, n)
	Each(1, n, func(_, i int) { want[i] = i * i })
	for _, workers := range []int{2, 4, 8} {
		got := make([]int, n)
		Each(workers, n, func(_, i int) { got[i] = i * i })
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: got[%d]=%d want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestOrderedMergeOrder(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8} {
		for _, n := range []int{0, 1, 4, 37, 500} {
			var order []int
			OrderedMerge(workers, n,
				func(_, i int) int {
					if i%7 == 0 { // stagger completion to force reordering
						time.Sleep(time.Millisecond)
					}
					return i * 3
				},
				func(i, v int) {
					if v != i*3 {
						t.Errorf("merge(%d) got value %d", i, v)
					}
					order = append(order, i)
				})
			if len(order) != n {
				t.Fatalf("workers=%d n=%d: merged %d items", workers, n, len(order))
			}
			for i, v := range order {
				if v != i {
					t.Fatalf("workers=%d n=%d: merge order %v", workers, n, order)
				}
			}
		}
	}
}

// A non-associative floating-point reduction must come out bit-identical
// for every worker count — the property the EM E-step relies on.
func TestOrderedMergeFloatDeterminism(t *testing.T) {
	n := 2000
	vals := make([]float64, n)
	x := 0.1
	for i := range vals {
		x = 3.999 * x * (1 - x) // chaotic, fills the mantissa
		vals[i] = x
	}
	reduce := func(workers int) float64 {
		sum := 0.0
		OrderedMerge(workers, n,
			func(_, i int) float64 { return vals[i] * vals[(i*7)%n] },
			func(_ int, v float64) { sum += v })
		return sum
	}
	want := reduce(1)
	for _, workers := range []int{2, 3, 4, 8} {
		if got := reduce(workers); got != want {
			t.Fatalf("workers=%d: sum %v != serial %v", workers, got, want)
		}
	}
}

func TestOrderedMergeBoundedWindow(t *testing.T) {
	workers := 4
	var inFlight, maxInFlight atomic.Int32
	OrderedMerge(workers, 200,
		func(_, i int) int {
			cur := inFlight.Add(1)
			for {
				m := maxInFlight.Load()
				if cur <= m || maxInFlight.CompareAndSwap(m, cur) {
					break
				}
			}
			if i == 0 { // straggling first item must not let the window run away
				time.Sleep(20 * time.Millisecond)
			}
			return i
		},
		func(_ int, _ int) { inFlight.Add(-1) })
	// In-flight results are capped at 2×workers; the processing slots add
	// at most `workers` more between claim and merge.
	if m := maxInFlight.Load(); m > int32(3*workers) {
		t.Fatalf("max in-flight %d exceeds bound %d", m, 3*workers)
	}
}
