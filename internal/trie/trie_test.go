package trie

import (
	"fmt"
	"testing"
	"testing/quick"
)

func build() *Trie {
	t := &Trie{}
	t.Insert("michael jordan", 1, 50)
	t.Insert("michael stonebraker", 2, 40)
	t.Insert("jiawei han", 3, 60)
	t.Insert("jure leskovec", 4, 55)
	return t
}

func TestLookup(t *testing.T) {
	tr := build()
	if tr.Len() != 4 {
		t.Fatalf("Len = %d", tr.Len())
	}
	v, ok := tr.Lookup("jiawei han")
	if !ok || v != 3 {
		t.Fatalf("Lookup = %d,%v", v, ok)
	}
	if _, ok := tr.Lookup("jiawei"); ok {
		t.Fatal("prefix matched as exact key")
	}
	if _, ok := tr.Lookup("nobody"); ok {
		t.Fatal("missing key matched")
	}
}

func TestInsertOverwrite(t *testing.T) {
	tr := build()
	tr.Insert("jiawei han", 9, 1)
	if tr.Len() != 4 {
		t.Fatalf("overwrite changed size: %d", tr.Len())
	}
	v, _ := tr.Lookup("jiawei han")
	if v != 9 {
		t.Fatalf("overwrite lost: %d", v)
	}
}

func TestCompleteOrdering(t *testing.T) {
	tr := build()
	got := tr.Complete("mi", 10)
	if len(got) != 2 {
		t.Fatalf("completions = %+v", got)
	}
	if got[0].Key != "michael jordan" || got[1].Key != "michael stonebraker" {
		t.Fatalf("weight ordering wrong: %+v", got)
	}
}

func TestCompleteLimit(t *testing.T) {
	tr := build()
	if got := tr.Complete("", 2); len(got) != 2 || got[0].Key != "jiawei han" {
		t.Fatalf("top-2 = %+v", got)
	}
	if got := tr.Complete("x", 5); got != nil {
		t.Fatalf("no-match = %+v", got)
	}
	if got := tr.Complete("j", 0); got != nil {
		t.Fatalf("k=0 = %+v", got)
	}
}

func TestExactKeyIsCompletion(t *testing.T) {
	tr := build()
	got := tr.Complete("jure leskovec", 5)
	if len(got) != 1 || got[0].Value != 4 {
		t.Fatalf("exact completion = %+v", got)
	}
}

func TestQuickInsertLookup(t *testing.T) {
	f := func(keys []string) bool {
		tr := &Trie{}
		ref := map[string]int32{}
		for i, k := range keys {
			tr.Insert(k, int32(i), float64(i))
			ref[k] = int32(i)
		}
		if tr.Len() != len(ref) {
			return false
		}
		for k, v := range ref {
			got, ok := tr.Lookup(k)
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompleteContainsAllMatches(t *testing.T) {
	tr := &Trie{}
	for i := 0; i < 100; i++ {
		tr.Insert(fmt.Sprintf("user%03d", i), int32(i), float64(i%10))
	}
	got := tr.Complete("user0", 1000)
	if len(got) != 100 {
		t.Fatalf("Complete(user0) = %d entries, want 100", len(got))
	}
	got2 := tr.Complete("user09", 1000)
	if len(got2) != 10 {
		t.Fatalf("Complete(user09) = %d entries, want 10", len(got2))
	}
}

func BenchmarkComplete(b *testing.B) {
	tr := &Trie{}
	for i := 0; i < 10000; i++ {
		tr.Insert(fmt.Sprintf("user%05d", i), int32(i), float64(i%100))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Complete("user0", 10)
	}
}
