// Package trie provides a byte-wise prefix trie with weighted top-k
// completion, backing the auto-completion box of the OCTOPUS interface
// ("she can simply type in the name … assisted by an auto-completion
// tool", Scenario 2).
package trie

import "sort"

// Trie maps strings to (value, weight) pairs and answers prefix queries.
// The zero value is an empty trie ready for use. Not safe for concurrent
// mutation; concurrent reads are safe after building.
type Trie struct {
	root node
	size int
}

type node struct {
	children map[byte]*node
	// terminal entry (valid when set=true)
	set    bool
	value  int32
	weight float64
	key    string
}

// Len returns the number of keys.
func (t *Trie) Len() int { return t.size }

// Insert adds key with an associated value and ranking weight,
// overwriting any previous entry for key.
func (t *Trie) Insert(key string, value int32, weight float64) {
	cur := &t.root
	for i := 0; i < len(key); i++ {
		if cur.children == nil {
			cur.children = make(map[byte]*node)
		}
		next, ok := cur.children[key[i]]
		if !ok {
			next = &node{}
			cur.children[key[i]] = next
		}
		cur = next
	}
	if !cur.set {
		t.size++
	}
	cur.set = true
	cur.value = value
	cur.weight = weight
	cur.key = key
}

// Lookup returns the value stored at exactly key.
func (t *Trie) Lookup(key string) (int32, bool) {
	cur := t.descend(key)
	if cur == nil || !cur.set {
		return 0, false
	}
	return cur.value, true
}

func (t *Trie) descend(prefix string) *node {
	cur := &t.root
	for i := 0; i < len(prefix); i++ {
		next, ok := cur.children[prefix[i]]
		if !ok {
			return nil
		}
		cur = next
	}
	return cur
}

// Completion is one auto-completion result.
type Completion struct {
	Key    string
	Value  int32
	Weight float64
}

// Complete returns up to k completions of prefix ordered by decreasing
// weight (ties broken lexicographically).
func (t *Trie) Complete(prefix string, k int) []Completion {
	start := t.descend(prefix)
	if start == nil || k <= 0 {
		return nil
	}
	var out []Completion
	var walk func(n *node)
	walk = func(n *node) {
		if n.set {
			out = append(out, Completion{Key: n.key, Value: n.value, Weight: n.weight})
		}
		// Deterministic child order.
		keys := make([]byte, 0, len(n.children))
		for b := range n.children {
			keys = append(keys, b)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, b := range keys {
			walk(n.children[b])
		}
	}
	walk(start)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Weight != out[j].Weight {
			return out[i].Weight > out[j].Weight
		}
		return out[i].Key < out[j].Key
	})
	if len(out) > k {
		out = out[:k]
	}
	return out
}
