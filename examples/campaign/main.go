// Campaign reproduces the political-campaign use case from the paper's
// introduction: "OCTOPUS can help publicity managers of the candidates …
// discovering who are the most influential candidates in certain
// standpoints, suggesting which standpoint of a candidate influences
// more people, and exploring the influential path from a candidate to
// the other."
//
// Unlike the other examples it builds everything from RAW DATA: a
// follower graph plus free-text "tweets" that are tokenized into items
// and retweet actions, from which the topic-aware model is learned by
// EM — the complete bring-your-own-data pipeline of Figure 2.
//
// Run with: go run ./examples/campaign
package main

import (
	"fmt"
	"log"

	"octopus"
	"octopus/internal/rng"
	"octopus/internal/tags"
)

// standpoints and stock phrases for synthetic tweets.
var standpoints = []struct {
	name    string
	phrases []string
}{
	{"economy", []string{
		"tax cuts rebuild economy jobs manufacturing wages",
		"jobs manufacturing trade exports economy growth",
		"trade tariffs exports economy growth wages",
		"small business jobs taxes economy payroll",
	}},
	{"healthcare", []string{
		"universal healthcare insurance hospital coverage patients",
		"hospital funding healthcare access patients nurses",
		"insurance premiums families healthcare coverage medicine",
		"prescription drug pricing medicine patients healthcare",
	}},
	{"climate", []string{
		"climate change renewable energy solar emissions",
		"solar wind energy renewable investment climate",
		"carbon emissions climate action renewable planet",
		"green energy infrastructure climate solar grid",
	}},
}

func main() {
	const (
		nUsers    = 900
		nPols     = 12 // politicians: users 0..11
		nTweets   = 2600
		numTopics = 3
	)
	r := rng.New(2024)

	// Follower graph: politicians have many followers; citizens follow a
	// few politicians (biased to one standpoint) and some friends.
	// Influence flows author → follower.
	gb := octopus.NewGraphBuilder(nUsers)
	leaning := make([]int, nUsers) // preferred standpoint per user
	for u := 0; u < nUsers; u++ {
		leaning[u] = r.Intn(numTopics)
		if u < nPols {
			gb.SetName(octopus.NodeID(u), fmt.Sprintf("Candidate %c (%s)",
				'A'+u, standpoints[u%numTopics].name))
		} else {
			gb.SetName(octopus.NodeID(u), fmt.Sprintf("voter_%04d", u))
		}
	}
	for u := nPols; u < nUsers; u++ {
		// Follow 2 politicians, preferring matching standpoints.
		for i := 0; i < 2; i++ {
			p := r.Intn(nPols)
			if p%numTopics != leaning[u] && r.Float64() < 0.7 {
				p = (leaning[u] + numTopics*r.Intn(nPols/numTopics)) % nPols
			}
			gb.AddEdge(octopus.NodeID(p), octopus.NodeID(u))
		}
		// And 3 friends.
		for i := 0; i < 3; i++ {
			gb.AddEdge(octopus.NodeID(nPols+r.Intn(nUsers-nPols)), octopus.NodeID(u))
		}
	}
	g := gb.Build()

	// Tweets: a politician posts on one of their standpoints; followers
	// sharing the leaning retweet with some probability (one hop of
	// friends may follow).
	tok := octopus.Tokenizer{}
	var items []octopus.Item
	var actions []octopus.Action
	for i := 0; i < nTweets; i++ {
		author := octopus.NodeID(r.Intn(nPols))
		sp := int(author) % numTopics
		text := standpoints[sp].phrases[r.Intn(len(standpoints[sp].phrases))]
		items = append(items, octopus.Item{ID: int32(i), Keywords: tok.Tokenize(text)})
		t := int64(0)
		actions = append(actions, octopus.Action{User: author, Item: int32(i), Time: t})
		// Cascade over followers.
		frontier := []octopus.NodeID{author}
		seen := map[octopus.NodeID]bool{author: true}
		for hop := 0; hop < 2; hop++ {
			var next []octopus.NodeID
			for _, u := range frontier {
				for _, v := range g.OutNeighbors(u) {
					if seen[v] {
						continue
					}
					p := 0.015
					if leaning[v] == sp {
						p = 0.5
					}
					if r.Float64() < p {
						seen[v] = true
						t++
						actions = append(actions, octopus.Action{User: v, Item: int32(i), Time: t})
						next = append(next, v)
					}
				}
			}
			frontier = next
		}
	}
	alog := octopus.BuildActionLog(nUsers, items, actions)
	fmt.Printf("raw data: %d users, %d follow edges, %d tweets, %d actions\n",
		g.NumNodes(), g.NumEdges(), len(items), alog.NumActions())

	// Learn the standpoint-aware influence model from the retweet log.
	// Z is over-provisioned (5 latent topics for 3 standpoints): extra
	// topics absorb sub-themes and prevent the healthcare topic from
	// co-habiting with stray climate phrases — standard topic-model
	// practice; the Bayesian keyword→γ mapping handles the indirection.
	fmt.Println("learning standpoint model by EM…")
	sys, err := octopus.Build(g, alog, octopus.Config{Topics: 5, EMIterations: 12, EMRestarts: 4, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}

	// Q1: who are the most influential candidates on healthcare?
	res, err := sys.DiscoverInfluencers([]string{"healthcare", "insurance", "hospital", "drug"},
		octopus.DiscoverOptions{K: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nmost influential users for standpoint \"healthcare insurance hospital drug\":")
	for i, s := range res.Seeds {
		fmt.Printf("  %d. %-28s σ=%.1f\n", i+1, s.Name, s.Spread)
	}

	// Q2: which standpoint of Candidate A influences most people?
	sug, err := sys.SuggestKeywords(0, 2, tags.SuggestOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s's strongest talking points: %v (est. reach %.1f)\n",
		g.Name(0), sug.Keywords, sug.Spread)

	// Q3: the influential path from Candidate A into the electorate.
	pg, err := sys.InfluencePaths(0, octopus.PathOptions{Theta: 0.02, MaxNodes: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhow %s reaches voters (top paths):\n", g.Name(0))
	for _, n := range pg.Nodes[1:] {
		fmt.Printf("  → %s (ap=%.3f)\n", n.Name, n.Prob)
	}
}
