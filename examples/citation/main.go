// Citation reproduces the paper's primary demo setting: an academic
// citation network (the ACMCite stand-in), with the model LEARNED from
// the citation action log by EM — the full Figure-2 pipeline, not the
// ground-truth shortcut. It then walks Scenarios 1–3 and reports how
// well the learned model recovered the generator's hidden topics.
//
// Run with: go run ./examples/citation
package main

import (
	"fmt"
	"log"

	"octopus"
	"octopus/internal/tags"
)

func main() {
	ds, err := octopus.GenerateCitation(octopus.CitationConfig{
		Authors: 800,
		Topics:  4,
		Papers:  2400, // more observed propagation → better EM recovery
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("learning topic-aware IC model from citation logs (EM)...")
	sys, err := octopus.Build(ds.Graph, ds.Log, octopus.Config{
		Topics:       4,
		EMIterations: 12,
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}
	ll := sys.LearnDiag
	fmt.Printf("EM log-likelihood: %.0f → %.0f over %d iterations\n\n",
		ll[0], ll[len(ll)-1], len(ll))

	// Verify the learned keyword model separates the generator's themes.
	for _, probe := range [][]string{
		{"mining", "pattern"}, {"learning", "neural"},
		{"social", "network"}, {"query", "index"},
	} {
		gamma, _ := sys.Keywords().InferGamma(probe)
		top := gamma.Top(1)[0]
		fmt.Printf("learned topics: %v → topic %d (confidence %.2f)\n", probe, top, gamma[top])
	}

	// Scenario 1 on the learned model.
	fmt.Println("\nScenario 1 — influential researchers for \"data mining\":")
	res, err := sys.DiscoverInfluencers([]string{"mining", "pattern"},
		octopus.DiscoverOptions{K: 8})
	if err != nil {
		log.Fatal(err)
	}
	aspects := map[string]bool{}
	for i, s := range res.Seeds {
		aspects[s.TopTopicName] = true
		fmt.Printf("  %d. %-22s σ=%.1f\n", i+1, s.Name, s.Spread)
	}
	fmt.Printf("  diversity: seeds span %d distinct aspects "+
		"(the paper's Scenario-1 observation)\n", len(aspects))

	// Scenario 2: selling points of the top seed.
	target := res.Seeds[0]
	sug, err := sys.SuggestKeywords(target.User, 3, tags.SuggestOptions{MinCoherence: 0.2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nScenario 2 — selling points of %s: %v (est. σ=%.1f)\n",
		target.Name, sug.Keywords, sug.Spread)
	if len(sug.Keywords) > 0 {
		radar, err := sys.Radar(sug.Keywords[0])
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  radar of %q: ", radar.Keyword)
		for _, z := range radar.Values.Top(2) {
			fmt.Printf("%s=%.2f ", radar.Topics[z], radar.Values[z])
		}
		fmt.Println()
	}

	// Scenario 3: forward and reverse exploration.
	pg, err := sys.InfluencePaths(target.User, octopus.PathOptions{Theta: 0.01, MaxNodes: 50})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nScenario 3 — %s influences %d researchers (σ=%.1f)\n",
		target.Name, len(pg.Nodes)-1, pg.Spread)
	rev, err := sys.InfluencePaths(target.User, octopus.PathOptions{
		Theta: 0.01, MaxNodes: 50, Reverse: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  … and is influenced by %d researchers", len(rev.Nodes)-1)
	if len(rev.Nodes) > 1 {
		fmt.Printf(", most strongly %s (ap=%.3f)", rev.Nodes[1].Name, rev.Nodes[1].Prob)
	}
	fmt.Println()
}
