// Quickstart: generate a small citation network, build OCTOPUS, and ask
// the three headline questions — who is influential on a topic, what are
// a user's selling points, and how does influence flow.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"octopus"
	"octopus/internal/tags"
)

func main() {
	// 1. Data: a synthetic stand-in for the ACMCite citation network.
	ds, err := octopus.GenerateCitation(octopus.CitationConfig{
		Authors: 1000,
		Topics:  4,
		Seed:    42,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 2. Build the system. Here we adopt the generator's ground-truth
	// model; pass Config{Topics: 4} instead to learn it from the action
	// log with EM.
	sys, err := octopus.Build(ds.Graph, ds.Log, octopus.Config{
		GroundTruth:      ds.Truth,
		GroundTruthWords: ds.TruthWords,
		TopicNames:       ds.TopicNames,
		Seed:             1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3a. Keyword-based influence maximization (Scenario 1).
	res, err := sys.DiscoverInfluencers([]string{"data", "mining"},
		octopus.DiscoverOptions{K: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Top influencers for \"data mining\":")
	for i, s := range res.Seeds {
		fmt.Printf("  %d. %s (σ=%.1f, aspect: %s)\n", i+1, s.Name, s.Spread, s.TopTopicName)
	}

	// 3b. Personalized influential keywords (Scenario 2).
	target := res.Seeds[0].User
	sug, err := sys.SuggestKeywords(target, 3, tags.SuggestOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSelling points of %s: %v (est. σ=%.1f)\n",
		res.Seeds[0].Name, sug.Keywords, sug.Spread)

	// 3c. Influential paths (Scenario 3).
	pg, err := sys.InfluencePaths(target, octopus.PathOptions{Theta: 0.02, MaxNodes: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s influences %d users directly/indirectly (σ=%.1f); strongest paths:\n",
		res.Seeds[0].Name, len(pg.Nodes)-1, pg.Spread)
	for _, n := range pg.Nodes[1:] {
		fmt.Printf("  → %s (ap=%.3f)\n", n.Name, n.Prob)
	}
}
