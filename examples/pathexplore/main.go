// Pathexplore demonstrates the influential-path service end to end the
// way the browser UI consumes it: it builds a system, starts the JSON
// HTTP API in-process, fetches the d3-ready path payload over HTTP,
// exercises the click-highlight interaction, and writes the JSON graph
// to paths.json for inspection.
//
// Run with: go run ./examples/pathexplore
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"net/url"
	"os"

	"octopus"
	"octopus/internal/graph"
)

func main() {
	ds, err := octopus.GenerateCitation(octopus.CitationConfig{
		Authors: 1500,
		Topics:  4,
		Seed:    21,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := octopus.Build(ds.Graph, ds.Log, octopus.Config{
		GroundTruth:      ds.Truth,
		GroundTruthWords: ds.TruthWords,
		TopicNames:       ds.TopicNames,
		Seed:             3,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Serve the JSON API exactly as `octopus serve` would.
	ts := httptest.NewServer(octopus.NewServer(sys))
	defer ts.Close()

	// The most-cited author is our "Michael Jordan".
	var hub graph.NodeID
	best := -1
	for u := 0; u < ds.Graph.NumNodes(); u++ {
		if d := ds.Graph.OutDegree(graph.NodeID(u)); d > best {
			best, hub = d, graph.NodeID(u)
		}
	}
	name := ds.Graph.Name(hub)
	fmt.Printf("exploring how %q influences the community…\n", name)

	body := mustGet(ts.URL + "/api/paths?user=" + url.QueryEscape(name) + "&theta=0.01&max=120")
	var pg octopus.PathGraph
	if err := json.Unmarshal(body, &pg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tree: %d nodes, %d links, spread %.1f, θ=%.2g\n",
		len(pg.Nodes), len(pg.Links), pg.Spread, pg.Theta)

	// The UI scales node radius by the "effect" (subtree mass): top 5.
	fmt.Println("largest-effect influenced users:")
	count := 0
	for _, n := range pg.Nodes[1:] {
		if count >= 5 {
			break
		}
		fmt.Printf("  %-24s ap=%.3f effect=%.2f depth=%d\n", n.Name, n.Prob, n.Size, n.Depth)
		count++
	}

	// Click interaction: highlight the path through a deep node.
	deep := pg.Nodes[len(pg.Nodes)-1]
	hl := mustGet(fmt.Sprintf("%s/api/paths?user=%s&theta=0.01&max=120&highlight=%d",
		ts.URL, url.QueryEscape(name), deep.ID))
	var withHL struct {
		Highlight []int32 `json:"highlight"`
	}
	if err := json.Unmarshal(hl, &withHL); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clicking %q highlights a %d-hop path from the root\n",
		deep.Name, len(withHL.Highlight)-1)

	// Reverse direction: who influences a recent author?
	var sink graph.NodeID
	best = -1
	for u := 0; u < ds.Graph.NumNodes(); u++ {
		if d := ds.Graph.InDegree(graph.NodeID(u)); d > best {
			best, sink = d, graph.NodeID(u)
		}
	}
	rev := mustGet(ts.URL + "/api/paths?user=" +
		url.QueryEscape(ds.Graph.Name(sink)) + "&reverse=1&theta=0.01")
	var rpg octopus.PathGraph
	if err := json.Unmarshal(rev, &rpg); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%q is influenced by %d users; strongest influencer: ",
		ds.Graph.Name(sink), len(rpg.Nodes)-1)
	if len(rpg.Nodes) > 1 {
		fmt.Printf("%s (ap=%.3f)\n", rpg.Nodes[1].Name, rpg.Nodes[1].Prob)
	} else {
		fmt.Println("nobody")
	}

	// Persist the d3 payload.
	if err := os.WriteFile("paths.json", body, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote paths.json (d3 force-layout ready: {nodes:[…], links:[…]})")
}

func mustGet(u string) []byte {
	resp, err := http.Get(u)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s: %s", u, resp.Status, body)
	}
	return body
}
