// Marketing reproduces the QQ deployment scenario (Section III): a
// community-structured social network with product-share actions, where
// an advertiser asks OCTOPUS which users to push a "game" ad to, and a
// seller asks which product keywords make a given user influential.
// A small holdout experiment measures the value of topic-aware seeding:
// simulated ad cascades from OCTOPUS seeds vs degree-based vs random.
//
// Run with: go run ./examples/marketing
package main

import (
	"fmt"
	"log"

	"octopus"
	"octopus/internal/graph"
	"octopus/internal/im"
	"octopus/internal/rng"
	"octopus/internal/tags"
	"octopus/internal/tic"
)

func main() {
	ds, err := octopus.GenerateSocial(octopus.SocialConfig{
		Users:  4000,
		Topics: 6,
		Seed:   11,
	})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := octopus.Build(ds.Graph, ds.Log, octopus.Config{
		GroundTruth:      ds.Truth,
		GroundTruthWords: ds.TruthWords,
		TopicNames:       ds.TopicNames,
		Seed:             2,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Advertiser: who should receive the "game" ad?
	const k = 10
	res, err := sys.DiscoverInfluencers([]string{"game"}, octopus.DiscoverOptions{K: k})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Push the game ad to:")
	for i, s := range res.Seeds {
		fmt.Printf("  %2d. %s (σ=%.1f)\n", i+1, s.Name, s.Spread)
	}

	// Holdout: simulate the ad campaign under the ground-truth model and
	// compare seeding strategies at equal budget k.
	gamma := res.Gamma
	sim := tic.NewSimulator(ds.Truth)
	evaluate := func(seeds []graph.NodeID) float64 {
		return sim.EstimateSpread(seeds, gamma, 2000, rng.New(99))
	}
	octopusSeeds := make([]graph.NodeID, 0, k)
	for _, s := range res.Seeds {
		octopusSeeds = append(octopusSeeds, s.User)
	}
	w := ds.Truth.Weights(gamma)
	degSeeds := im.TopWeightedDegree(ds.Graph, w, k)
	rndSeeds := im.Random(ds.Graph, k, rng.New(5))

	fmt.Printf("\nSimulated campaign reach (IC cascades, budget k=%d):\n", k)
	fmt.Printf("  OCTOPUS topic-aware seeds: %8.1f users\n", evaluate(octopusSeeds))
	fmt.Printf("  weighted-degree seeds:     %8.1f users\n", evaluate(degSeeds))
	fmt.Printf("  random seeds:              %8.1f users\n", evaluate(rndSeeds))

	// Targeted campaign: the advertiser only cares about reaching the
	// gaming audience (users whose dominant interest is topic 0 in the
	// ground truth — a stand-in for a CRM segment).
	var audience []graph.NodeID
	for u, mix := range ds.Mixtures {
		if mix.Top(1)[0] == 0 {
			audience = append(audience, graph.NodeID(u))
		}
	}
	if len(audience) > 0 {
		tres, err := sys.DiscoverTargetedInfluencers([]string{"game"}, audience, 5, 20000, 9)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nTargeted campaign (audience: %d gaming users): reach %.1f of them via\n",
			len(audience), tres.AudienceSpread)
		for i, s := range tres.Seeds {
			fmt.Printf("  %d. %s (audience σ=%.1f)\n", i+1, s.Name, s.Spread)
		}
	}

	// Seller: which product keywords make this influencer valuable?
	// MinCoherence keeps the suggested set within one product category
	// (the paper: "suggested keywords are consistent in topics").
	target := octopusSeeds[0]
	sug, err := sys.SuggestKeywords(target, 3, tags.SuggestOptions{MinCoherence: 0.5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s is most influential for products tagged %v (est. σ=%.1f)\n",
		ds.Graph.Name(target), sug.Keywords, sug.Spread)
	ranked, err := sys.RankUserKeywords(target, 6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("full keyword ranking for this user:")
	for _, kw := range ranked {
		fmt.Printf("  %-14s σ=%.1f\n", kw.Keyword, kw.Spread)
	}
}
