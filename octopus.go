// Package octopus is an open-source reproduction of OCTOPUS, the online
// topic-aware influence analysis system for social networks (Fan, Qiu,
// Li, Meng, Zhang, Li, Tan, Du — ICDE 2018), together with the research
// engines it is built on: online topic-aware influence maximization
// (Chen et al., PVLDB 2015) and personalized influential keywords
// exploration (Li et al., SIGMOD 2017).
//
// A System is built from a social graph and an action log. It learns a
// topic-aware independent cascade model (per-edge per-topic activation
// probabilities plus a keyword model) with EM, precomputes the online
// indexes, and then answers three analysis services interactively:
//
//   - DiscoverInfluencers: given free-text keywords, find the seed users
//     with maximum topic-aware influence spread (Scenario 1).
//   - SuggestKeywords: given a user, find the keyword set that maximizes
//     the user's influence — their "selling points" (Scenario 2).
//   - InfluencePaths: visualize how a user influences (or is influenced
//     by) the network through maximum influence arborescences
//     (Scenario 3).
//
// Quickstart:
//
//	ds, _ := octopus.GenerateCitation(octopus.CitationConfig{Authors: 5000, Seed: 1})
//	sys, _ := octopus.Build(ds.Graph, ds.Log, octopus.Config{Topics: 8})
//	res, _ := sys.DiscoverInfluencers([]string{"data", "mining"},
//	    octopus.DiscoverOptions{K: 10})
//
// All randomized components take explicit seeds; identical inputs
// produce identical outputs. The package is pure Go with no dependencies
// outside the standard library.
package octopus

import (
	"fmt"
	"os"
	"path/filepath"

	"octopus/internal/actionlog"
	"octopus/internal/core"
	"octopus/internal/datagen"
	"octopus/internal/graph"
	"octopus/internal/server"
	"octopus/internal/store"
	"octopus/internal/stream"
	"octopus/internal/tic"
	"octopus/internal/topic"
)

// Core system types.
type (
	// System is a fully built OCTOPUS instance; see core.System.
	System = core.System
	// Config controls system construction.
	Config = core.Config
	// DiscoverOptions tunes keyword-based influential user discovery.
	DiscoverOptions = core.DiscoverOptions
	// DiscoverResult is the answer to a keyword-IM query.
	DiscoverResult = core.DiscoverResult
	// InfluencerResult is one discovered seed user.
	InfluencerResult = core.InfluencerResult
	// PathOptions tunes influential-path exploration.
	PathOptions = core.PathOptions
	// PathGraph is the d3-ready influential-path payload.
	PathGraph = core.PathGraph
	// RadarData is the per-topic profile of a keyword.
	RadarData = core.RadarData
	// TargetedResult is the answer to a targeted influence query.
	TargetedResult = core.TargetedResult
	// Stats summarizes a built system.
	Stats = core.Stats
)

// Graph and data types.
type (
	// Graph is the immutable CSR social graph.
	Graph = graph.Graph
	// GraphBuilder accumulates edges into a Graph.
	GraphBuilder = graph.Builder
	// NodeID identifies a graph node.
	NodeID = graph.NodeID
	// ActionLog is a set of propagation episodes.
	ActionLog = actionlog.Log
	// Item is a piece of propagated content.
	Item = actionlog.Item
	// Action records a user acting on an item.
	Action = actionlog.Action
	// Tokenizer extracts keywords from free text.
	Tokenizer = actionlog.Tokenizer
)

// Data generation types.
type (
	// Dataset bundles a generated graph, ground-truth models and log.
	Dataset = datagen.Dataset
	// CitationConfig parameterizes the ACMCite-style generator.
	CitationConfig = datagen.CitationConfig
	// SocialConfig parameterizes the QQ-style generator.
	SocialConfig = datagen.SocialConfig
)

// Server is the JSON HTTP API over a System.
type Server = server.Server

// ServerOptions tunes the query-serving layer of a Server: result-cache
// size (generation-tagged, so snapshot swaps invalidate implicitly),
// the in-flight query bound past which requests are shed with 429, and
// the observability knobs (trace ring, slow-query threshold, logger).
type ServerOptions = server.Options

// Streaming ingestion types (live systems).
type (
	// LiveSystem serves immutable snapshots while absorbing a stream of
	// graph/action events; see stream.LiveSystem.
	LiveSystem = stream.LiveSystem
	// StreamConfig tunes ingestion buffering, priors and snapshot folds.
	StreamConfig = stream.Config
	// StreamStats reports the ingestion pipeline counters.
	StreamStats = stream.Stats
	// StreamSnapshot is one immutable serving generation.
	StreamSnapshot = stream.Snapshot
	// EdgeEvent announces a new follow/citation edge to a LiveSystem.
	EdgeEvent = stream.EdgeEvent
)

// Persistence types (snapshots, write-ahead log, crash recovery).
type (
	// StoreDir is an open durability directory: checkpoint snapshot +
	// write-ahead log; see store.Dir.
	StoreDir = store.Dir
	// RecoverResult is the outcome of crash recovery.
	RecoverResult = store.RecoverResult
	// MappedSystem owns the lifetime of a snapshot served in place via
	// mmap; see store.Mapped.
	MappedSystem = store.Mapped
	// MapStats reports how a mapped snapshot is backed.
	MapStats = store.MapStats
)

// Build constructs a System from a social graph and action log. With
// cfg.GroundTruth set, model learning is skipped; otherwise the
// topic-aware IC parameters and keyword model are learned from the log
// by EM (cfg.Topics required).
func Build(g *Graph, log *ActionLog, cfg Config) (*System, error) {
	return core.Build(g, log, cfg)
}

// NewGraphBuilder returns a builder expecting n nodes.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// BuildActionLog assembles an ActionLog from items and raw actions.
func BuildActionLog(numUsers int, items []Item, actions []Action) *ActionLog {
	return actionlog.Build(numUsers, items, actions)
}

// GenerateCitation synthesizes the ACMCite-style academic dataset.
func GenerateCitation(cfg CitationConfig) (*Dataset, error) { return datagen.Citation(cfg) }

// GenerateSocial synthesizes the QQ-style marketing dataset.
func GenerateSocial(cfg SocialConfig) (*Dataset, error) { return datagen.Social(cfg) }

// NewServer wraps a System in the JSON HTTP API with default serving
// options (result cache on, no in-flight bound).
func NewServer(sys *System) *Server { return server.New(sys) }

// NewServerWith wraps a System in the JSON HTTP API with explicit
// serving options.
func NewServerWith(sys *System, opt ServerOptions) *Server { return server.NewWith(sys, opt) }

// NewLiveSystem turns a built System into a live one that ingests
// streamed events and periodically swaps in rebuilt snapshots. Callers
// must Close the returned LiveSystem.
func NewLiveSystem(sys *System, cfg StreamConfig) (*LiveSystem, error) {
	return stream.NewLiveSystem(sys, cfg)
}

// NewLiveServer wraps a LiveSystem in the JSON HTTP API with the
// /api/ingest endpoints enabled.
func NewLiveServer(ls *LiveSystem) *Server { return server.NewLive(ls) }

// NewLiveServerWith wraps a LiveSystem in the JSON HTTP API with
// explicit serving options. Cached results are tagged with the serving
// snapshot's generation, so every ingest-driven swap invalidates the
// cache implicitly.
func NewLiveServerWith(ls *LiveSystem, opt ServerOptions) *Server {
	return server.NewLiveWith(ls, opt)
}

// SaveSystem writes a complete built system — graph, action log,
// learned models, precomputed online indexes and build config — to
// path as one versioned, checksummed binary snapshot (atomically: temp
// file + rename). LoadSystem then cold-starts without re-running EM or
// index precomputation.
func SaveSystem(path string, sys *System) error {
	return store.Save(path, sys)
}

// LoadSystem reads a snapshot written by SaveSystem (or checkpointed by
// a durable LiveSystem) and assembles the system. Neither model
// learning nor index precomputation runs — the snapshot carries the
// learned models AND the precomputed indexes, so only cheap derived
// structures are rebuilt. Note the consequence: index tuning in the
// snapshot's config does not re-apply on load; rebuild from raw data
// to change it.
func LoadSystem(path string) (*System, error) {
	return store.Load(path)
}

// MapSystem opens a snapshot written by SaveSystem for zero-copy
// serving: the file is memory-mapped read-only and the system's bulk
// arrays (graph CSR, model probability tables, index rows) alias the
// mapped bytes instead of being decoded onto the heap, so cold start
// is bounded by validation, not by array materialization. The action
// log decodes lazily on first use. The returned MappedSystem owns the
// mapping — keep it for the system's lifetime and Close it when done.
// Falls back transparently to the copying path (heap-backed, identical
// query results) for legacy-format files, unsupported platforms, or
// when OCTOPUS_MMAP=off.
func MapSystem(path string) (*System, *MappedSystem, error) {
	return store.Map(path, store.MapOptions{})
}

// OpenStore opens (creating if needed) a durability directory for a
// live system: pass the returned StoreDir in StreamConfig.Store to make
// ingestion durable. If the directory holds previous state — a
// checkpoint snapshot and possibly a write-ahead-log tail from a crash
// — it is recovered, compacted, and returned; serve the recovered
// system in that case. The LiveSystem takes ownership of the StoreDir
// and closes it.
func OpenStore(dir string) (*StoreDir, *RecoverResult, error) {
	return store.Open(dir)
}

// Recover rebuilds the latest durable state from a durability directory
// without opening it for writing: the newest checkpoint snapshot with
// the write-ahead-log tail replayed on top.
func Recover(dir string) (*RecoverResult, error) {
	return store.Recover(dir)
}

// SaveGraph writes g to path in the text format.
func SaveGraph(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("octopus: %w", err)
	}
	defer f.Close()
	if err := graph.WriteText(f, g); err != nil {
		return fmt.Errorf("octopus: %w", err)
	}
	return f.Close()
}

// LoadGraph reads a graph from a text-format file.
func LoadGraph(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("octopus: %w", err)
	}
	defer f.Close()
	g, err := graph.ReadText(f)
	if err != nil {
		return nil, fmt.Errorf("octopus: %w", err)
	}
	return g, nil
}

// SaveModels writes a system's learned (or adopted) models next to each
// other: <dir>/propagation.tic and <dir>/keywords.topics. Together with
// SaveGraph/SaveLog this persists everything needed to rebuild the
// system without re-running EM.
func SaveModels(dir string, sys *System) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("octopus: %w", err)
	}
	pf, err := os.Create(filepath.Join(dir, "propagation.tic"))
	if err != nil {
		return fmt.Errorf("octopus: %w", err)
	}
	defer pf.Close()
	if err := tic.Write(pf, sys.Propagation()); err != nil {
		return fmt.Errorf("octopus: %w", err)
	}
	if err := pf.Close(); err != nil {
		return fmt.Errorf("octopus: %w", err)
	}
	kf, err := os.Create(filepath.Join(dir, "keywords.topics"))
	if err != nil {
		return fmt.Errorf("octopus: %w", err)
	}
	defer kf.Close()
	if err := topic.Write(kf, sys.Keywords()); err != nil {
		return fmt.Errorf("octopus: %w", err)
	}
	return kf.Close()
}

// LoadModels reads models previously written by SaveModels and returns a
// Config preset that adopts them (skipping EM) when passed to Build.
func LoadModels(dir string, g *Graph) (Config, error) {
	pf, err := os.Open(filepath.Join(dir, "propagation.tic"))
	if err != nil {
		return Config{}, fmt.Errorf("octopus: %w", err)
	}
	defer pf.Close()
	prop, err := tic.Read(pf, g)
	if err != nil {
		return Config{}, fmt.Errorf("octopus: %w", err)
	}
	kf, err := os.Open(filepath.Join(dir, "keywords.topics"))
	if err != nil {
		return Config{}, fmt.Errorf("octopus: %w", err)
	}
	defer kf.Close()
	words, err := topic.Read(kf)
	if err != nil {
		return Config{}, fmt.Errorf("octopus: %w", err)
	}
	return Config{GroundTruth: prop, GroundTruthWords: words}, nil
}

// SaveLog writes an action log to path.
func SaveLog(path string, l *ActionLog) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("octopus: %w", err)
	}
	defer f.Close()
	if err := actionlog.Write(f, l); err != nil {
		return fmt.Errorf("octopus: %w", err)
	}
	return f.Close()
}

// LoadLog reads an action log from path.
func LoadLog(path string) (*ActionLog, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("octopus: %w", err)
	}
	defer f.Close()
	l, err := actionlog.Read(f)
	if err != nil {
		return nil, fmt.Errorf("octopus: %w", err)
	}
	return l, nil
}
