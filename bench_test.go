// Benchmarks regenerating every experiment row of DESIGN.md §4 (E1–E12)
// as testing.B targets. cmd/octopus-bench prints the corresponding full
// tables; these targets provide per-operation numbers with allocation
// profiles. Sizes are kept moderate so the full suite completes quickly;
// the table harness runs the larger sweeps.
package octopus_test

import (
	"sync"
	"testing"

	"octopus"
	"octopus/internal/core"
	"octopus/internal/datagen"
	"octopus/internal/em"
	"octopus/internal/graph"
	"octopus/internal/im"
	"octopus/internal/mia"
	"octopus/internal/otim"
	"octopus/internal/ris"
	"octopus/internal/rng"
	"octopus/internal/tags"
	"octopus/internal/tic"
	"octopus/internal/topic"
)

var (
	benchOnce sync.Once
	benchDS   *datagen.Dataset
	benchSys  *core.System
	benchErr  error
)

// benchWorld builds one shared 2000-author citation system with topic
// samples enabled.
func benchWorld(b *testing.B) (*core.System, *datagen.Dataset) {
	b.Helper()
	benchOnce.Do(func() {
		benchDS, benchErr = datagen.Citation(datagen.CitationConfig{
			Authors: 2000, Topics: 8, Papers: 3000, Seed: 1,
		})
		if benchErr != nil {
			return
		}
		benchSys, benchErr = core.Build(benchDS.Graph, benchDS.Log, core.Config{
			GroundTruth:      benchDS.Truth,
			GroundTruthWords: benchDS.TruthWords,
			TopicNames:       benchDS.TopicNames,
			OTIM:             otim.BuildOptions{Samples: 16, SampleK: 10},
			Seed:             2,
		})
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchSys, benchDS
}

// E1 — Scenario 1: keyword-based influential user discovery, k=10.
func BenchmarkE1KeywordIM(b *testing.B) {
	sys, _ := benchWorld(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.DiscoverInfluencers([]string{"mining", "pattern"},
			core.DiscoverOptions{K: 10}); err != nil {
			b.Fatal(err)
		}
	}
}

// E2 — Scenario 2: personalized influential keyword suggestion, k=3.
func BenchmarkE2KeywordSuggest(b *testing.B) {
	sys, ds := benchWorld(b)
	var target graph.NodeID = -1
	for u := 0; u < ds.Graph.NumNodes(); u++ {
		if len(sys.UserKeywords(graph.NodeID(u))) >= 4 {
			target = graph.NodeID(u)
			break
		}
	}
	if target < 0 {
		b.Skip("no keyword-rich user")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.SuggestKeywords(target, 3, tags.SuggestOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// E3 — Scenario 3: influential path exploration at θ=0.01.
func BenchmarkE3PathExploration(b *testing.B) {
	sys, ds := benchWorld(b)
	hub := hubNode(ds)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sys.InfluencePaths(hub, octopus.PathOptions{Theta: 0.01}); err != nil {
			b.Fatal(err)
		}
	}
}

// E4 — online best-effort vs the naive per-query baselines, k=10.
func BenchmarkE4OnlineVsNaive(b *testing.B) {
	sys, _ := benchWorld(b)
	gamma := topic.Dist(rng.New(7).DirichletSym(0.3, 8))
	eng := otim.NewEngine(sys.OTIMIndex())
	m := sys.Propagation()

	b.Run("BestEffort", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(gamma, otim.QueryOptions{K: 10, Theta: 0.01}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("BestEffortSamples", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(gamma, otim.QueryOptions{
				K: 10, Theta: 0.01, UseSamples: true,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NaiveIMM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := otim.NaiveQuery(m, gamma, 10, otim.NaiveIMM, 0.01, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NaiveDegreeDiscount", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := otim.NaiveQuery(m, gamma, 10, otim.NaiveDegreeDiscount, 0.01, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("NaiveMIAGreedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := otim.NaiveQuery(m, gamma, 10, otim.NaiveMIAGreedy, 0.01, uint64(i)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E5 — bound configuration ablation, k=10.
func BenchmarkE5BoundPruning(b *testing.B) {
	sys, _ := benchWorld(b)
	gamma := topic.Dist(rng.New(11).DirichletSym(0.3, 8))
	eng := otim.NewEngine(sys.OTIMIndex())
	run := func(opt otim.QueryOptions) func(*testing.B) {
		return func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.Query(gamma, opt); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("PrecompLocal", run(otim.QueryOptions{K: 10, Theta: 0.01}))
	b.Run("PrecompOnly", run(otim.QueryOptions{K: 10, Theta: 0.01, SkipLocalBound: true}))
	b.Run("NeighborhoodOnly", run(otim.QueryOptions{
		K: 10, Theta: 0.01, FirstBound: otim.BoundNeighborhood, SkipLocalBound: true,
	}))
	b.Run("Epsilon01", run(otim.QueryOptions{K: 10, Theta: 0.01, Epsilon: 0.1}))
}

// E6 — topic-sample index hit vs miss.
func BenchmarkE6TopicSamples(b *testing.B) {
	sys, _ := benchWorld(b)
	eng := otim.NewEngine(sys.OTIMIndex())
	pure := topic.Pure(0, 8) // exact sample match
	far := topic.Uniform(8)  // unlikely to be near a sparse sample
	b.Run("Hit", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			res, err := eng.Query(pure, otim.QueryOptions{K: 10, Theta: 0.01, UseSamples: true})
			if err != nil {
				b.Fatal(err)
			}
			if !res.Stats.SampleHit {
				b.Fatal("expected sample hit")
			}
		}
	})
	b.Run("Miss", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(far, otim.QueryOptions{
				K: 10, Theta: 0.01, UseSamples: true, SampleTolerance: 0.01,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E7 — suggestion search strategies at equal candidate pools.
func BenchmarkE7SuggestQuality(b *testing.B) {
	sys, ds := benchWorld(b)
	sugg := tags.NewSuggester(sys.TagsIndex(), sys.Keywords(), nil)
	target := hubNode(ds)
	b.Run("Greedy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sugg.Suggest(target, tags.SuggestOptions{K: 2, MaxCandidates: 12}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("Exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := sugg.Suggest(target, tags.SuggestOptions{
				K: 2, MaxCandidates: 12, Exhaustive: true,
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E8 — influencer index build and query.
func BenchmarkE8InfluencerIndex(b *testing.B) {
	_, ds := benchWorld(b)
	b.Run("Build1024", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := tags.BuildIndex(ds.Truth, tags.IndexOptions{
				Polls: 1024, Seed: uint64(i),
			}); err != nil {
				b.Fatal(err)
			}
		}
	})
	ix, err := tags.BuildIndex(ds.Truth, tags.IndexOptions{Polls: 2048, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	gamma := topic.Uniform(8)
	hub := hubNode(ds)
	b.Run("QueryIndexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.SpreadEstimate(hub, gamma)
		}
	})
	sim := tic.NewSimulator(ds.Truth)
	b.Run("QueryMCScratch", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.EstimateSpread([]graph.NodeID{hub}, gamma, 2048, rng.New(uint64(i)))
		}
	})
}

// E9 — MIA tree construction across θ.
func BenchmarkE9MIATheta(b *testing.B) {
	_, ds := benchWorld(b)
	m := ds.Truth
	gamma := topic.Uniform(8)
	prob := func(e graph.EdgeID) float64 { return m.EdgeProb(e, gamma) }
	calc := mia.NewCalc(ds.Graph)
	hub := hubNode(ds)
	for _, tc := range []struct {
		name  string
		theta float64
	}{{"Theta0.1", 0.1}, {"Theta0.01", 0.01}, {"Theta0.001", 0.001}} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tree := calc.MIOA(prob, hub, tc.theta, 0)
				_ = tree
			}
		})
	}
}

// E10 — substrate throughput: cascades, RR sets, IMM.
func BenchmarkE10Scalability(b *testing.B) {
	_, ds := benchWorld(b)
	m := ds.Truth
	gamma := topic.Uniform(8)
	sim := tic.NewSimulator(m)
	r := rng.New(3)
	b.Run("Cascade", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			sim.Cascade([]graph.NodeID{graph.NodeID(i % ds.Graph.NumNodes())}, gamma, r, nil)
		}
	})
	b.Run("RRSet", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			col := ris.Generate(m, gamma, 10, rng.New(uint64(i)))
			_ = col
		}
	})
	b.Run("IMMk10", func(b *testing.B) {
		w := m.Weights(gamma)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ris.IMM(ds.Graph, w, ris.IMMOptions{K: 10, Epsilon: 0.3, Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// E11 — EM learning on a small world.
func BenchmarkE11EMRecovery(b *testing.B) {
	ds, err := datagen.Citation(datagen.CitationConfig{
		Authors: 300, Topics: 4, Papers: 600, Seed: 5,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := em.Learn(ds.Graph, ds.Log, em.Config{
			Topics: 4, Iterations: 8, Seed: uint64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// E12 — classical IM baselines at k=20.
func BenchmarkE12Baselines(b *testing.B) {
	_, ds := benchWorld(b)
	m := ds.Truth
	gamma := topic.Uniform(8)
	w := m.Weights(gamma)
	g := ds.Graph
	b.Run("IMM", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := ris.IMM(g, w, ris.IMMOptions{K: 20, Epsilon: 0.3, Seed: uint64(i)}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("DegreeDiscount", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			im.DegreeDiscount(g, w, 20)
		}
	})
	b.Run("SingleDiscount", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			im.SingleDiscount(g, w, 20)
		}
	})
	b.Run("PageRank", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			im.PageRank(g, w, 20, 30, 0.85)
		}
	})
}

func hubNode(ds *datagen.Dataset) graph.NodeID {
	var best graph.NodeID
	bestDeg := -1
	for u := 0; u < ds.Graph.NumNodes(); u++ {
		if d := ds.Graph.OutDegree(graph.NodeID(u)); d > bestDeg {
			bestDeg, best = d, graph.NodeID(u)
		}
	}
	return best
}
