// Command unsafecheck enforces the repo's pointer-safety boundary: the
// only package allowed to import unsafe (or golang.org/x/sys/unix-style
// raw syscall surfaces) is internal/arena, which owns every aliased
// view into mapped snapshot bytes. Everything else must consume those
// views through arena's bounds-checked API, so a grep-level audit of
// mapped-memory lifetimes only ever has one package to read.
//
// Run from the repository root:
//
//	go run ./tools/unsafecheck
//
// Exits non-zero listing each offending file. Test files are held to
// the same rule — a test aliasing mapped bytes directly would be just
// as able to outlive an munmap as production code.
package main

import (
	"fmt"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// allowed are the package directories (relative, slash-separated) that
// may import unsafe.
var allowed = map[string]bool{
	"internal/arena": true,
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var bad []string
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == ".git" || name == "testdata" || name == "node_modules" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ImportsOnly)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		for _, imp := range f.Imports {
			p, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if p != "unsafe" {
				continue
			}
			rel, err := filepath.Rel(root, filepath.Dir(path))
			if err != nil {
				rel = filepath.Dir(path)
			}
			if !allowed[filepath.ToSlash(rel)] {
				bad = append(bad, fmt.Sprintf("%s imports unsafe (only internal/arena may)", path))
			}
		}
		return nil
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "unsafecheck:", err)
		os.Exit(1)
	}
	if len(bad) > 0 {
		for _, b := range bad {
			fmt.Fprintln(os.Stderr, "unsafecheck:", b)
		}
		os.Exit(1)
	}
	fmt.Println("unsafecheck: ok — unsafe is confined to internal/arena")
}
