// Command octopus is the demo driver for the OCTOPUS reproduction. It
// generates (or loads) a social network with action logs, builds the
// analysis system, and either walks through the paper's three demo
// scenarios in the terminal or serves the JSON HTTP API the d3 front end
// binds to.
//
// Usage:
//
//	octopus demo  [-dataset citation|social] [-n N] [-topics Z] [-seed S] [-em] [-workers W]
//	octopus serve [-addr :8080] [-load model.oct] [-mmap] [-mmap-warmup] [-ingest] [-wal DIR]
//	              [-follow http://leader:8080]
//	              [-shard k/N] [-strategy hash|community]
//	              [-coordinator -shard-addrs URL,URL,...] [-shard-timeout D] [-probe-interval D]
//	              [-rebuild-events N] [-rebuild-interval D] [-incremental-fold]
//	              [-cache-entries N] [-max-inflight N] [-admin-addr 127.0.0.1:6060]
//	              [-slow-query D] [-trace-ring N] [-log-format text|json]
//	              [-slo-availability F] [-slo-p99 D] [-slo-staleness D]
//	              [-diag-dir DIR] [-diag-interval D]
//	              [same dataset flags]
//	octopus query [-q "data mining"] [-k 10] [-load model.oct] [-mmap] [same dataset flags]
//	octopus train [-out models/] [same dataset flags]   # EM + persist text models
//	octopus build [-o model.oct] [same dataset flags]   # build + binary snapshot
//	octopus split [-shards N] [-strategy hash|community] [-shard-dir shards/]
//	              [-load model.oct | same dataset flags] # partition into shard snapshots
//
// build serializes the complete built system (graph, action log,
// learned models, config) into one checksummed binary snapshot; serve
// and query accept it via -load and cold-start in milliseconds instead
// of re-running EM and data generation. Adding -mmap serves the
// snapshot in place: the file is memory-mapped read-only, the bulk
// arrays alias the mapped bytes instead of being copied onto the heap,
// and the action log decodes lazily on first use — cold start is
// bounded by validation, and memory is shared page cache other
// processes mapping the same file reuse. Query results are identical
// either way. OCTOPUS_MMAP=off forces the copying path. Adding
// -mmap-warmup prefaults the mapping at open (madvise + one touch per
// page), moving the page-fault cost off the first queries; -mmap-warmup
// without -mmap is an error.
//
// # Sharded serving
//
// split partitions a corpus into N shard snapshots (internal/shard:
// global node-id space, edges owned by their source, actions by their
// acting user) under -shard-dir. Each shard file is an ordinary
// snapshot: `octopus serve -load shards/shard-0-of-2.oct -mmap` serves
// one shard. serve -shard k/N is the one-step equivalent — build or
// load the full corpus, cut shard k of N in memory, and serve it.
//
// serve -coordinator -shard-addrs=http://h1:8081,http://h2:8082 runs
// the scatter-gather tier instead of a local engine: every query fans
// out to the live shards (bounded by -shard-timeout per shard) and the
// answers are merged — spreads additively, completions by max weight,
// status by summing — through the same cache/coalesce/admission shell,
// so a 1-shard coordinator answers byte-identically to the process
// behind it. A background prober (-probe-interval) detects dead and
// recovered shards; missing shards degrade /api/health and stamp
// partial answers with X-Octopus-Shards-Missing (never cached).
//
// -workers bounds the parallelism of the offline build pipeline (EM +
// index precomputation) and of streaming fold rebuilds; for a fixed
// seed the built system is identical at every setting, 0 uses all
// cores.
//
// With -ingest, serve wraps the system in the streaming subsystem: the
// /api/ingest endpoints accept live actions/edges and the serving
// snapshot is rebuilt and atomically swapped after every N events (or D
// of staleness) without taking queries offline. -incremental-fold (on
// by default) delta-maintains the precomputed indexes at each swap so
// the rebuild cost scales with the delta, not the corpus; the result is
// query-identical to a full rebuild, and oversized deltas fall back to
// one automatically. Adding -wal DIR makes
// ingestion durable: accepted events are written ahead to DIR/wal.log,
// every swap checkpoints DIR/snapshot.oct, and a restarted serve -wal
// recovers snapshot + WAL tail automatically. SIGINT/SIGTERM trigger a
// graceful shutdown: the HTTP server drains, then the ingester folds
// and checkpoints one final time.
//
// With -follow, serve runs as a read replica of another octopus serve
// -ingest -wal instance: it downloads the leader's checkpoint snapshot
// into its own -wal DIR (resuming partial downloads), maps it in place
// (zero-copy, like -load -mmap), then tails the leader's WAL over
// long-poll GET /api/replicate and replays it through the streaming
// subsystem — folding exactly at the leader's checkpoint fences, so at
// equal versions replica and leader serve byte-identical answers. The
// replica serves the same read API; ingest endpoints answer 403 (writes
// go to the leader), /api/health stays degraded with a replication_lag
// reason until it has caught up, and a restarted replica resumes from
// its local state without re-downloading the snapshot. Leader loss is
// retried with backoff forever; a leader that restarted from crash
// recovery signals the replica to re-bootstrap automatically.
//
// serve always runs the query-serving layer: a generation-tagged result
// cache (-cache-entries, invalidated implicitly by snapshot swaps),
// request coalescing, and admission control (-max-inflight; excess
// requests are shed with 429 + Retry-After). GET /api/metrics reports
// per-endpoint latency quantiles and cache/shed counters; POST
// /api/batch answers many queries in one round trip.
//
// Observability: GET /metrics serves the Prometheus text exposition,
// every response carries an X-Octopus-Trace id resolvable at GET
// /api/debug/traces, -slow-query D logs slower requests with their
// span breakdown, and -admin-addr binds a separate operator listener
// with net/http/pprof. serve logs are structured (-log-format json for
// machine ingestion).
//
// Every query endpoint answers ?explain=1 with a per-stage engine cost
// breakdown (bound hits, samples mixed, nodes walked). GET /api/health
// reports ready|degraded|failing from multi-window SLO burn rates over
// the -slo-* objectives; with -diag-dir, a crossed burn threshold
// auto-captures a rate-limited diagnostics bundle (profiles, traces,
// metrics) listed at GET /api/debug/diag.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"octopus/internal/actionlog"
	"octopus/internal/core"
	"octopus/internal/datagen"
	"octopus/internal/graph"
	"octopus/internal/obs"
	"octopus/internal/otim"
	"octopus/internal/repl"
	"octopus/internal/server"
	"octopus/internal/shard"
	"octopus/internal/store"
	"octopus/internal/stream"
	"octopus/internal/tags"
	"octopus/internal/tic"
	"octopus/internal/topic"
)

type options struct {
	dataset string
	n       int
	topics  int
	seed    uint64
	useEM   bool
	workers int
	addr    string
	query   string
	k       int
	out     string
	load    string
	mmap    bool
	warmup  bool
	snapOut string

	shards        int
	strategy      string
	shardDir      string
	shardSpec     string
	coordinator   bool
	shardAddrs    string
	shardTimeout  time.Duration
	probeInterval time.Duration

	ingest          bool
	walDir          string
	follow          string
	rebuildEvents   int
	rebuildInterval time.Duration
	incrementalFold bool

	cacheEntries int
	maxInflight  int

	adminAddr string
	slowQuery time.Duration
	traceRing int
	logFormat string

	diagDir         string
	diagInterval    time.Duration
	sloAvailability float64
	sloP99          time.Duration
	sloStaleness    time.Duration
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	opt := options{}
	fs.StringVar(&opt.dataset, "dataset", "citation", "citation or social")
	fs.IntVar(&opt.n, "n", 3000, "number of users/authors")
	fs.IntVar(&opt.topics, "topics", 8, "number of topics")
	fs.Uint64Var(&opt.seed, "seed", 1, "random seed")
	fs.BoolVar(&opt.useEM, "em", false, "learn the model from logs with EM instead of adopting ground truth")
	fs.IntVar(&opt.workers, "workers", 0, "build parallelism for EM + index construction and fold rebuilds (0 = all cores, 1 = serial; same result either way)")
	fs.StringVar(&opt.addr, "addr", ":8080", "listen address (serve)")
	fs.StringVar(&opt.query, "q", "data mining", "keyword query (query)")
	fs.IntVar(&opt.k, "k", 10, "seed count (query)")
	fs.StringVar(&opt.out, "out", "models", "output directory (train)")
	fs.StringVar(&opt.load, "load", "", "load a binary system snapshot instead of generating + building")
	fs.BoolVar(&opt.mmap, "mmap", false, "with -load: serve the snapshot zero-copy via mmap instead of decoding it onto the heap (OCTOPUS_MMAP=off forces the copying path)")
	fs.BoolVar(&opt.warmup, "mmap-warmup", false, "with -load -mmap: prefault the mapping at open (madvise + touch every page), moving page-fault latency off the first queries")
	fs.StringVar(&opt.snapOut, "o", "model.oct", "snapshot output path (build)")
	fs.IntVar(&opt.shards, "shards", 2, "number of shards to partition into (split)")
	fs.StringVar(&opt.strategy, "strategy", "hash", "partition strategy: "+strings.Join(shard.Strategies(), " or ")+" (split, serve -shard)")
	fs.StringVar(&opt.shardDir, "shard-dir", "shards", "output directory for shard snapshots (split)")
	fs.StringVar(&opt.shardSpec, "shard", "", "serve shard k of N (format k/N, 0-based): build or load the full corpus, cut shard k, serve it (serve)")
	fs.BoolVar(&opt.coordinator, "coordinator", false, "serve as a scatter-gather coordinator over -shard-addrs instead of a local engine (serve)")
	fs.StringVar(&opt.shardAddrs, "shard-addrs", "", "comma-separated shard base URLs for -coordinator, in shard order (serve)")
	fs.DurationVar(&opt.shardTimeout, "shard-timeout", 5*time.Second, "per-shard fan-out bound; a slower shard is treated as missing for that request (serve -coordinator)")
	fs.DurationVar(&opt.probeInterval, "probe-interval", 2*time.Second, "background shard health-probe cadence (serve -coordinator)")
	fs.BoolVar(&opt.ingest, "ingest", false, "enable streaming ingestion endpoints (serve)")
	fs.StringVar(&opt.walDir, "wal", "", "durability directory for serve -ingest: WAL + checkpoint snapshots, with crash recovery on start (with -follow: the replica's local state)")
	fs.StringVar(&opt.follow, "follow", "", "serve as a read replica of the leader at this base URL; requires -wal DIR, conflicts with -ingest and -load (serve)")
	fs.IntVar(&opt.rebuildEvents, "rebuild-events", 4096, "fold the ingest overlay into a new snapshot after this many events (serve -ingest)")
	fs.DurationVar(&opt.rebuildInterval, "rebuild-interval", 30*time.Second, "also fold when pending events are older than this; 0 disables (serve -ingest)")
	fs.BoolVar(&opt.incrementalFold, "incremental-fold", true, "delta-maintain the indexes at fold time so swap latency scales with the delta; query-identical to a full rebuild, which large deltas automatically fall back to (serve -ingest)")
	fs.IntVar(&opt.cacheEntries, "cache-entries", server.DefaultCacheEntries, "result-cache entries, invalidated per snapshot generation; negative disables the cache (serve)")
	fs.IntVar(&opt.maxInflight, "max-inflight", 4*runtime.GOMAXPROCS(0), "concurrent query-engine bound; excess requests get 429 + Retry-After, 0 = unlimited (serve)")
	fs.StringVar(&opt.adminAddr, "admin-addr", "", "optional operator listener for pprof + /metrics + /api/debug/traces; keep it loopback or firewalled, e.g. 127.0.0.1:6060 (serve)")
	fs.DurationVar(&opt.slowQuery, "slow-query", 0, "log requests slower than this with their span breakdown; 0 disables (serve)")
	fs.IntVar(&opt.traceRing, "trace-ring", 0, "recent request traces kept for /api/debug/traces; 0 = default, negative disables tracing (serve)")
	fs.StringVar(&opt.logFormat, "log-format", "text", "structured log encoding: text or json (serve)")
	fs.StringVar(&opt.diagDir, "diag-dir", "", "directory for auto-captured diagnostics bundles when an SLO burn threshold is crossed; empty disables the watchdog (serve)")
	fs.DurationVar(&opt.diagInterval, "diag-interval", 10*time.Minute, "minimum interval between diagnostics bundles (serve)")
	fs.Float64Var(&opt.sloAvailability, "slo-availability", 0.99, "availability objective: target fraction of non-error responses (serve)")
	fs.DurationVar(&opt.sloP99, "slo-p99", 2*time.Second, "latency objective: requests slower than this count against the p99 budget (serve)")
	fs.DurationVar(&opt.sloStaleness, "slo-staleness", 0, "ingest-staleness objective for serve -ingest; 0 disables (serve)")
	_ = fs.Parse(os.Args[2:])

	switch cmd {
	case "demo":
		run(opt, demo)
	case "serve":
		serveMain(opt)
	case "query":
		run(opt, oneShot)
	case "train":
		opt.useEM = true
		run(opt, train)
	case "build":
		run(opt, buildSnapshot)
	case "split":
		run(opt, splitFleet)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: octopus <demo|serve|query|train|build|split> [flags]")
}

// splitFleet partitions the full system into shard snapshots — the
// exchange format a shard server boots from with serve -load.
func splitFleet(opt options, sys *core.System, _ *datagen.Dataset) error {
	strat, err := shard.ParseStrategy(opt.strategy, opt.seed)
	if err != nil {
		return err
	}
	start := time.Now()
	paths, err := shard.WriteFleet(opt.shardDir, sys, strat, opt.shards)
	if err != nil {
		return err
	}
	for k, p := range paths {
		fi, err := os.Stat(p)
		if err != nil {
			return err
		}
		fmt.Printf("shard %d/%d: %s (%.1f MiB)\n", k, opt.shards, p, float64(fi.Size())/(1<<20))
	}
	fmt.Printf("split %d shards (%s strategy) in %s\n",
		opt.shards, strat.Name(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("serve one with:  octopus serve -load %s -mmap\n", paths[0])
	fmt.Println("then coordinate: octopus serve -coordinator -shard-addrs=http://h0:8081,...")
	return nil
}

// buildSnapshot persists the complete built system as one binary
// snapshot for -load.
func buildSnapshot(opt options, sys *core.System, _ *datagen.Dataset) error {
	start := time.Now()
	if err := store.Save(opt.snapOut, sys); err != nil {
		return err
	}
	fi, err := os.Stat(opt.snapOut)
	if err != nil {
		return err
	}
	st := sys.Stats()
	fmt.Printf("wrote %s: %.1f MiB in %s (%d nodes, %d edges, %d topics, %d keywords)\n",
		opt.snapOut, float64(fi.Size())/(1<<20), time.Since(start).Round(time.Millisecond),
		st.Nodes, st.Edges, st.Topics, st.Vocabulary)
	fmt.Printf("cold-start it with: octopus serve -load %s\n", opt.snapOut)
	return nil
}

// train persists the graph, the action log and the EM-learned models so
// later runs can skip learning.
func train(opt options, sys *core.System, ds *datagen.Dataset) error {
	if ds == nil {
		return fmt.Errorf("train needs a generated dataset; -load is not supported here")
	}
	if err := os.MkdirAll(opt.out, 0o755); err != nil {
		return err
	}
	write := func(name string, fn func(f *os.File) error) error {
		f, err := os.Create(filepath.Join(opt.out, name))
		if err != nil {
			return err
		}
		defer f.Close()
		if err := fn(f); err != nil {
			return err
		}
		return f.Close()
	}
	if err := write("graph.txt", func(f *os.File) error { return graph.WriteText(f, ds.Graph) }); err != nil {
		return err
	}
	if err := write("log.txt", func(f *os.File) error { return actionlog.Write(f, ds.Log) }); err != nil {
		return err
	}
	if err := write("propagation.tic", func(f *os.File) error { return tic.Write(f, sys.Propagation()) }); err != nil {
		return err
	}
	if err := write("keywords.topics", func(f *os.File) error { return topic.Write(f, sys.Keywords()) }); err != nil {
		return err
	}
	ll := sys.LearnDiag
	fmt.Printf("trained on %d episodes (LL %.0f → %.0f); wrote graph, log and models to %s/\n",
		sys.Stats().Episodes, ll[0], ll[len(ll)-1], opt.out)
	return nil
}

func run(opt options, fn func(options, *core.System, *datagen.Dataset) error) {
	sys, mapped, ds, err := buildSystem(opt)
	if err != nil {
		log.Fatal(err)
	}
	if err := fn(opt, sys, ds); err != nil {
		log.Fatal(err)
	}
	if mapped != nil {
		mapped.Close()
	}
}

func buildSystem(opt options) (*core.System, *store.Mapped, *datagen.Dataset, error) {
	if opt.warmup && !opt.mmap {
		return nil, nil, nil, errors.New("-mmap-warmup prefaults a mapping; it requires -mmap")
	}
	if opt.load != "" {
		start := time.Now()
		if opt.mmap {
			sys, mapped, err := store.Map(opt.load, store.MapOptions{Warmup: opt.warmup})
			if err != nil {
				return nil, nil, nil, err
			}
			// Deliberately no sys.Stats() here: it would decode the deferred
			// action log and forfeit the lazy cold start. Graph dimensions
			// are already materialized.
			ms := mapped.Stats()
			fmt.Fprintf(os.Stderr, "mapped snapshot %s in %s: %s, %.1f MiB (%.1f MiB prefaulted), %d nodes, %d edges, %d copy fallbacks\n",
				opt.load, time.Since(start).Round(time.Millisecond), ms.Backing,
				float64(ms.FileSize)/(1<<20), float64(ms.WarmedBytes)/(1<<20),
				sys.Graph().NumNodes(), sys.Graph().NumEdges(), ms.CopyFallbacks)
			return sys, mapped, nil, nil
		}
		sys, err := store.Load(opt.load)
		if err != nil {
			return nil, nil, nil, err
		}
		st := sys.Stats()
		fmt.Fprintf(os.Stderr, "loaded snapshot %s in %s: %d nodes, %d edges, %d topics, %d keywords\n",
			opt.load, time.Since(start).Round(time.Millisecond), st.Nodes, st.Edges, st.Topics, st.Vocabulary)
		return sys, nil, nil, nil
	}
	var ds *datagen.Dataset
	var err error
	fmt.Fprintf(os.Stderr, "generating %s dataset (n=%d, Z=%d, seed=%d)...\n",
		opt.dataset, opt.n, opt.topics, opt.seed)
	switch opt.dataset {
	case "citation":
		ds, err = datagen.Citation(datagen.CitationConfig{
			Authors: opt.n, Topics: opt.topics, Seed: opt.seed,
		})
	case "social":
		ds, err = datagen.Social(datagen.SocialConfig{
			Users: opt.n, Topics: opt.topics, Seed: opt.seed,
		})
	default:
		return nil, nil, nil, fmt.Errorf("unknown dataset %q", opt.dataset)
	}
	if err != nil {
		return nil, nil, nil, err
	}
	cfg := core.Config{
		TopicNames: ds.TopicNames,
		OTIM:       otim.BuildOptions{Samples: 2 * opt.topics},
		Seed:       opt.seed,
		Workers:    opt.workers,
	}
	if opt.useEM {
		cfg.Topics = opt.topics
		fmt.Fprintln(os.Stderr, "learning model from action logs with EM...")
	} else {
		cfg.GroundTruth = ds.Truth
		cfg.GroundTruthWords = ds.TruthWords
	}
	fmt.Fprintln(os.Stderr, "building indexes...")
	sys, err := core.Build(ds.Graph, ds.Log, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	st := sys.Stats()
	fmt.Fprintf(os.Stderr, "ready: %d nodes, %d edges, %d topics, %d keywords, %d polls\n",
		st.Nodes, st.Edges, st.Topics, st.Vocabulary, st.InfluencerPolls)
	return sys, nil, ds, nil
}

// serveMain builds (or loads, or recovers) the system and serves it.
// Unlike the other commands it controls system construction itself:
// with -wal, a durability directory that already holds state wins over
// both -load and dataset generation.
func serveMain(opt options) {
	if opt.coordinator {
		if err := serveCoordinator(opt); err != nil {
			log.Fatal(err)
		}
		return
	}
	if opt.shardSpec != "" {
		if err := serveShard(opt); err != nil {
			log.Fatal(err)
		}
		return
	}
	if opt.follow != "" {
		if err := serveFollower(opt); err != nil {
			log.Fatal(err)
		}
		return
	}
	var dir *store.Dir
	var sys *core.System
	var mapped *store.Mapped
	if opt.walDir != "" {
		if !opt.ingest {
			log.Fatal("serve: -wal requires -ingest")
		}
		d, recovered, err := store.Open(opt.walDir)
		if err != nil {
			log.Fatal(err)
		}
		dir = d
		if recovered != nil {
			st := recovered.Sys.Stats()
			fmt.Fprintf(os.Stderr, "recovered from %s: snapshot v%d + %d WAL events (%d nodes, %d edges)\n",
				opt.walDir, recovered.SnapshotVersion, recovered.Replayed, st.Nodes, st.Edges)
			sys = recovered.Sys
		}
	}
	if sys == nil {
		var err error
		if sys, mapped, _, err = buildSystem(opt); err != nil {
			log.Fatal(err)
		}
	}
	if err := serve(opt, sys, mapped, dir); err != nil {
		log.Fatal(err)
	}
}

// serveCoordinator runs serve -coordinator: no local engine at all —
// queries fan out to the shard fleet and merge. The coordinator is
// read-only (ingest endpoints answer 404); writes go to whatever feeds
// the shard corpora.
func serveCoordinator(opt options) error {
	if opt.shardAddrs == "" {
		return errors.New("serve -coordinator requires -shard-addrs=URL,URL,...")
	}
	if opt.ingest || opt.walDir != "" || opt.follow != "" || opt.load != "" || opt.shardSpec != "" {
		return errors.New("serve -coordinator has no local corpus; drop -ingest/-wal/-follow/-load/-shard")
	}
	var addrs []string
	for _, a := range strings.Split(opt.shardAddrs, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	logger := newLogger(opt)
	srv, err := server.NewCoordinator(addrs, serverOptions(opt, logger), server.CoordinatorOptions{
		ShardTimeout:  opt.shardTimeout,
		ProbeInterval: opt.probeInterval,
	})
	if err != nil {
		return err
	}
	logger.Info("listening", slog.String("addr", opt.addr),
		slog.String("mode", "coordinator"), slog.Int("shards", len(addrs)),
		slog.Duration("shardTimeout", opt.shardTimeout))
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runHTTP(ctx, opt, logger, srv, func() error { return nil })
}

// serveShard runs serve -shard k/N: build or load the FULL corpus, cut
// shard k of N in memory (same strategy and seed as octopus split, so
// a mixed fleet of pre-split and on-the-fly shards agrees), and serve
// that shard as a static read-only server.
func serveShard(opt options) error {
	if opt.ingest || opt.walDir != "" || opt.follow != "" {
		return errors.New("serve -shard is a static read-only shard; drop -ingest/-wal/-follow")
	}
	k, n, err := parseShardSpec(opt.shardSpec)
	if err != nil {
		return err
	}
	strat, err := shard.ParseStrategy(opt.strategy, opt.seed)
	if err != nil {
		return err
	}
	full, mapped, _, err := buildSystem(opt)
	if err != nil {
		return err
	}
	corpora, err := shard.SplitSystem(full, strat, n)
	if err != nil {
		return err
	}
	sys, err := shard.BuildSystem(full, corpora[k])
	if err != nil {
		return err
	}
	st := sys.Stats()
	fmt.Fprintf(os.Stderr, "shard %d/%d (%s strategy): %d edges, %d episodes, %d actions of the full corpus\n",
		k, n, strat.Name(), st.Edges, st.Episodes, st.Actions)
	return serve(opt, sys, mapped, nil)
}

// parseShardSpec parses the -shard k/N argument (0-based).
func parseShardSpec(spec string) (k, n int, err error) {
	if _, err := fmt.Sscanf(spec, "%d/%d", &k, &n); err != nil {
		return 0, 0, fmt.Errorf("-shard %q: want k/N (e.g. 0/2)", spec)
	}
	if n < 1 || k < 0 || k >= n {
		return 0, 0, fmt.Errorf("-shard %q: need 0 <= k < N", spec)
	}
	return k, n, nil
}

// newLogger builds the serve path's structured logger.
func newLogger(opt options) *slog.Logger {
	if opt.logFormat == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, nil))
}

// serverOptions assembles the serving-layer options shared by every
// serve mode (static, live, replica).
func serverOptions(opt options, logger *slog.Logger) server.Options {
	return server.Options{
		CacheEntries: opt.cacheEntries,
		MaxInflight:  opt.maxInflight,
		TraceRing:    opt.traceRing,
		SlowQuery:    opt.slowQuery,
		Logger:       logger,
		SLO: obs.SLOConfig{
			Availability:  opt.sloAvailability,
			LatencyTarget: opt.sloP99,
			Staleness:     opt.sloStaleness,
		},
		DiagDir:         opt.diagDir,
		DiagMinInterval: opt.diagInterval,
	}
}

// serveFollower runs serve -follow: bootstrap a read replica from the
// leader's checkpoint snapshot (mapped in place), tail its WAL, and
// serve the read-only API. -wal names the replica's local state
// directory; ingestion and dataset construction are the leader's job.
func serveFollower(opt options) error {
	if opt.walDir == "" {
		return errors.New("serve -follow requires -wal DIR for the replica's local state")
	}
	if opt.ingest {
		return errors.New("serve -follow is read-only; -ingest belongs on the leader")
	}
	if opt.load != "" {
		return errors.New("serve -follow bootstraps from the leader's snapshot; drop -load")
	}
	logger := newLogger(opt)
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	logger.Info("bootstrapping replica",
		slog.String("leader", opt.follow), slog.String("dir", opt.walDir))
	f, err := repl.Start(ctx, repl.Config{
		Leader: opt.follow,
		Dir:    opt.walDir,
		Stream: stream.Config{Workers: opt.workers},
		Logger: logger,
	})
	if err != nil {
		return err
	}
	srv := server.NewReplicaWith(f, serverOptions(opt, logger))
	logger.Info("listening", slog.String("addr", opt.addr),
		slog.String("mode", "replica"), slog.String("leader", opt.follow))
	return runHTTP(ctx, opt, logger, srv, func() error {
		logger.Info("stopping replication", slog.Uint64("version", f.Live().Version()))
		return f.Close()
	})
}

func serve(opt options, sys *core.System, mapped *store.Mapped, dir *store.Dir) error {
	logger := newLogger(opt)
	if mapped != nil {
		// The mapping's owning reference drops only after the HTTP server
		// has drained (serve returns post-Shutdown), so late in-flight
		// requests never touch unmapped memory. Folded generations hold
		// their own retained references via the snapshot backing chain.
		defer mapped.Close()
	}
	var srv *server.Server
	var live *stream.LiveSystem
	srvOpt := serverOptions(opt, logger)
	if mapped != nil {
		srvOpt.StoreStats = mapped.Stats
	}
	if opt.ingest {
		ls, err := stream.NewLiveSystem(sys, stream.Config{
			RebuildEvents:   opt.rebuildEvents,
			RebuildInterval: opt.rebuildInterval,
			Workers:         opt.workers,
			IncrementalFold: opt.incrementalFold,
			Store:           dir,
			Logger:          logger,
		})
		if err != nil {
			return err
		}
		live = ls
		srv = server.NewLiveWith(ls, srvOpt)
		durable := ""
		if dir != nil {
			durable = dir.Path()
		}
		logger.Info("listening", slog.String("addr", opt.addr), slog.Bool("live", true),
			slog.String("durable", durable))
	} else {
		srv = server.NewWith(sys, srvOpt)
		logger.Info("listening", slog.String("addr", opt.addr), slog.Bool("live", false))
	}
	// Report the effective settings (0 cache entries means the default
	// size; only a negative value disables the cache).
	cacheDesc := fmt.Sprintf("%d", opt.cacheEntries)
	if opt.cacheEntries == 0 {
		cacheDesc = fmt.Sprintf("%d", server.DefaultCacheEntries)
	} else if opt.cacheEntries < 0 {
		cacheDesc = "off"
	}
	logger.Info("serving layer", slog.String("cacheEntries", cacheDesc),
		slog.Int("maxInflight", opt.maxInflight),
		slog.Duration("slowQuery", opt.slowQuery))

	// Graceful shutdown: on SIGINT/SIGTERM stop accepting, drain in-flight
	// requests (bounded), then drain + checkpoint the live ingester so the
	// final WAL state flushes cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	return runHTTP(ctx, opt, logger, srv, func() error {
		if live != nil {
			if err := live.Close(); err != nil {
				return fmt.Errorf("closing ingester: %w", err)
			}
			if dir != nil {
				logger.Info("final checkpoint",
					slog.Uint64("version", dir.LastCheckpointVersion()),
					slog.String("dir", dir.Path()))
			}
		}
		return nil
	})
}

// runHTTP serves srv on opt.addr with hardened timeouts and the
// optional admin listener, until ctx ends or the listener fails. On
// shutdown the HTTP server drains in-flight requests (bounded), then
// drain runs — closing whatever subsystem feeds the server.
func runHTTP(ctx context.Context, opt options, logger *slog.Logger, srv *server.Server, drain func() error) error {
	httpSrv := &http.Server{
		Addr:    opt.addr,
		Handler: srv,
		// Never rely on the zero-value (unbounded) timeouts: slowloris
		// headers and stuck request bodies must not pin connections.
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	// The operator surface gets its own listener so pprof and raw metric
	// dumps are never exposed on the public port by accident.
	var adminSrv *http.Server
	if opt.adminAddr != "" {
		adminSrv = &http.Server{
			Addr:              opt.adminAddr,
			Handler:           srv.AdminHandler(),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			logger.Info("admin listening", slog.String("addr", opt.adminAddr))
			if err := adminSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("admin server", slog.Any("error", err))
			}
		}()
	}

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()

	select {
	case err := <-errCh:
		srv.Close()
		_ = drain()
		return err
	case <-ctx.Done():
		logger.Info("shutting down")
		srv.Close()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if adminSrv != nil {
			_ = adminSrv.Shutdown(shutdownCtx)
		}
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			logger.Error("http shutdown", slog.Any("error", err))
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("http server", slog.Any("error", err))
		}
		return drain()
	}
}

func oneShot(opt options, sys *core.System, _ *datagen.Dataset) error {
	tok := actionlog.Tokenizer{}
	keywords := tok.Tokenize(opt.query)
	res, err := sys.DiscoverInfluencers(keywords, core.DiscoverOptions{K: opt.k})
	if err != nil {
		return err
	}
	printIM(sys, keywords, res)
	return nil
}

func printIM(sys *core.System, keywords []string, res *core.DiscoverResult) {
	fmt.Printf("\nInfluential users for %q (γ top topics: %s)\n",
		strings.Join(keywords, " "), gammaString(sys, res))
	for i, s := range res.Seeds {
		fmt.Printf("  %2d. %-24s σ=%8.2f  aspect: %s\n", i+1, s.Name, s.Spread, s.TopTopicName)
	}
	fmt.Printf("  [engine: %d exact evals, %d pruned users, sample hit: %v]\n",
		res.Stats.ExactEvals, res.Stats.Pruned, res.Stats.SampleHit)
}

func gammaString(sys *core.System, res *core.DiscoverResult) string {
	var parts []string
	for _, z := range res.Gamma.Top(2) {
		parts = append(parts, fmt.Sprintf("%s %.2f", sys.Keywords().TopicName(z), res.Gamma[z]))
	}
	return strings.Join(parts, ", ")
}

// demo walks the three demonstration scenarios of Section III.
func demo(opt options, sys *core.System, ds *datagen.Dataset) error {
	fmt.Println("==================================================================")
	fmt.Println(" OCTOPUS demo — three scenarios from the ICDE 2018 demonstration")
	fmt.Println("==================================================================")

	// ---- Scenario 1: keyword-based influential user discovery.
	fmt.Println("\n--- Scenario 1: Keyword-Based Influential User Discovery ---")
	q1 := []string{"mining", "pattern"}
	if opt.dataset == "social" {
		q1 = []string{"game"}
	}
	res, err := sys.DiscoverInfluencers(q1, core.DiscoverOptions{K: 8})
	if err != nil {
		return err
	}
	printIM(sys, q1, res)

	// ---- Scenario 2: influential keyword suggestion for a target user.
	fmt.Println("\n--- Scenario 2: Influential Keywords Suggestion ---")
	target := pickTarget(sys)
	if target < 0 {
		fmt.Println("  (no keyword-rich user found)")
	} else {
		name := sys.Graph().Name(target)
		// Auto-completion in action.
		pre := name[:min(3, len(name))]
		comps := sys.Complete(pre, 3)
		fmt.Printf("  typing %q → completions: ", pre)
		for i, c := range comps {
			if i > 0 {
				fmt.Print("; ")
			}
			fmt.Print(c.Key)
		}
		fmt.Println()
		sug, err := sys.SuggestKeywords(target, 3, tags.SuggestOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("  selling points of %s: %v (est. σ=%.2f)\n", name, sug.Keywords, sug.Spread)
		if len(sug.Keywords) > 0 {
			radar, err := sys.Radar(sug.Keywords[0])
			if err == nil {
				fmt.Printf("  radar for %q:\n", sug.Keywords[0])
				for z, v := range radar.Values {
					fmt.Printf("    %-22s %s %.3f\n", radar.Topics[z], bar(v, 40), v)
				}
			}
		}
	}

	// ---- Scenario 3: interactive influential path exploration.
	fmt.Println("\n--- Scenario 3: Interactive Influential Path Exploration ---")
	hub := hubNode(sys)
	pg, err := sys.InfluencePaths(hub, core.PathOptions{Theta: 0.01, MaxNodes: 40})
	if err != nil {
		return err
	}
	fmt.Printf("  how %s influences the community (θ=%.2g, %d nodes, σ=%.2f):\n",
		sys.Graph().Name(hub), pg.Theta, len(pg.Nodes), pg.Spread)
	printTree(sys, pg)
	if len(pg.Nodes) > 1 {
		clicked := pg.Nodes[len(pg.Nodes)-1].ID
		path, err := sys.HighlightPath(pg, clicked)
		if err == nil {
			fmt.Printf("  clicking %q highlights: ", sys.Graph().Name(clicked))
			for i, u := range path {
				if i > 0 {
					fmt.Print(" → ")
				}
				fmt.Print(sys.Graph().Name(u))
			}
			fmt.Println()
		}
	}
	_ = ds
	return nil
}

func pickTarget(sys *core.System) graph.NodeID {
	best, bestDeg := graph.NodeID(-1), -1
	for u := 0; u < sys.Graph().NumNodes(); u++ {
		if len(sys.UserKeywords(graph.NodeID(u))) >= 4 {
			if d := sys.Graph().OutDegree(graph.NodeID(u)); d > bestDeg {
				best, bestDeg = graph.NodeID(u), d
			}
		}
	}
	return best
}

func hubNode(sys *core.System) graph.NodeID {
	best, bestDeg := graph.NodeID(0), -1
	for u := 0; u < sys.Graph().NumNodes(); u++ {
		if d := sys.Graph().OutDegree(graph.NodeID(u)); d > bestDeg {
			best, bestDeg = graph.NodeID(u), d
		}
	}
	return best
}

func printTree(sys *core.System, pg *core.PathGraph) {
	shown := 0
	for _, n := range pg.Nodes {
		if shown >= 12 {
			fmt.Printf("    … and %d more nodes\n", len(pg.Nodes)-shown)
			break
		}
		indent := strings.Repeat("  ", int(n.Depth))
		fmt.Printf("    %s%s (ap=%.3f, effect=%.2f)\n", indent, sys.Graph().Name(n.ID), n.Prob, n.Size)
		shown++
	}
}

func bar(v float64, width int) string {
	n := int(v * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("█", n) + strings.Repeat("░", width-n)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
