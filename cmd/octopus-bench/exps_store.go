package main

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"octopus/internal/bench"
	"octopus/internal/core"
	"octopus/internal/datagen"
	"octopus/internal/otim"
	"octopus/internal/store"
)

// E14 — persistence: (a) cold-start speedup of loading a binary system
// snapshot versus rebuilding from raw data with EM, across dataset
// sizes; (b) the ingest-throughput cost of write-ahead logging with
// per-drain fsync and per-swap checkpoints, against the in-memory
// pipeline of E13.
func runE14(e *env) error {
	if err := runE14ColdStart(e); err != nil {
		return err
	}
	return runE14WALOverhead(e)
}

func runE14ColdStart(e *env) error {
	dir, err := os.MkdirTemp("", "octopus-e14-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	tab := bench.NewTable(
		"E14a: cold start on the citation dataset — snapshot load vs full rebuild (EM)",
		"authors", "rebuild(EM)", "save", "size", "load", "speedup")
	worst := 0.0
	for i, n := range e.sizes.snapshotNodes {
		ds, err := datagen.Citation(datagen.CitationConfig{
			Authors: n, Topics: 6, Seed: e.seed ^ 0xe14,
		})
		if err != nil {
			return err
		}
		cfg := core.Config{
			Topics: 6, // learn with EM: the cost -load amortizes away
			OTIM:   otim.BuildOptions{Samples: 12},
			Seed:   e.seed ^ 0x14e,
		}
		t0 := time.Now()
		sys, err := core.Build(ds.Graph, ds.Log, cfg)
		if err != nil {
			return err
		}
		buildDur := time.Since(t0)

		path := filepath.Join(dir, fmt.Sprintf("model-%d.oct", i))
		t1 := time.Now()
		if err := store.Save(path, sys); err != nil {
			return err
		}
		saveDur := time.Since(t1)
		fi, err := os.Stat(path)
		if err != nil {
			return err
		}

		// Best of 3: the steady-state cold-start cost, excluding one-off
		// first-touch noise (page cache, GC from the build above).
		var sys2 *core.System
		var loadDur time.Duration
		for rep := 0; rep < 3; rep++ {
			t2 := time.Now()
			if sys2, err = store.Load(path); err != nil {
				return err
			}
			if d := time.Since(t2); rep == 0 || d < loadDur {
				loadDur = d
			}
		}
		if got, want := sys2.Stats(), sys.Stats(); got.Edges != want.Edges || got.Vocabulary != want.Vocabulary {
			return fmt.Errorf("loaded system differs: %+v vs %+v", got, want)
		}
		speedup := buildDur.Seconds() / loadDur.Seconds()
		if worst == 0 || speedup < worst {
			worst = speedup
		}
		tab.Row(n, buildDur.Round(time.Millisecond), saveDur.Round(time.Millisecond),
			fmt.Sprintf("%.1fMiB", float64(fi.Size())/(1<<20)),
			loadDur.Round(time.Millisecond), fmt.Sprintf("%.0f×", speedup))
	}
	tab.Render(e.out)
	fmt.Fprintf(e.out, "worst-case cold-start speedup: %.0f× (target ≥10×)\n", worst)
	if worst < 10 {
		return fmt.Errorf("cold-start speedup %.1f× below the 10× target", worst)
	}
	return nil
}

func runE14WALOverhead(e *env) error {
	h, err := buildStreamHoldout(e)
	if err != nil {
		return err
	}
	rebuildEvents := e.sizes.streamBatch * 8
	tab := bench.NewTable(
		fmt.Sprintf("E14b: WAL overhead on ingest replay (%d-author stream, rebuild@%d, batch=%d)",
			e.sizes.streamAuthors, rebuildEvents, e.sizes.streamBatch),
		"mode", "events", "events/s", "fsyncs", "checkpoints", "wal bytes", "overhead")

	mem, err := replay(h, rebuildEvents, e.sizes.streamBatch, "")
	if err != nil {
		return err
	}
	memEPS := float64(mem.events) / mem.wall.Seconds()
	tab.Row("memory", mem.events, fmt.Sprintf("%.0f", memEPS), "-", "-", "-", "-")

	walDir, err := os.MkdirTemp("", "octopus-e14-wal-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(walDir)
	wal, err := replay(h, rebuildEvents, e.sizes.streamBatch, walDir)
	if err != nil {
		return err
	}
	walEPS := float64(wal.events) / wal.wall.Seconds()
	overhead := (memEPS - walEPS) / memEPS * 100
	tab.Row("WAL+fsync", wal.events, fmt.Sprintf("%.0f", walEPS),
		wal.walSyncs, wal.checkpoints,
		fmt.Sprintf("%.0fKiB", float64(wal.walBytes)/(1<<10)),
		fmt.Sprintf("%.1f%%", overhead))
	tab.Render(e.out)
	fmt.Fprintln(e.out, "note: fsyncs are group commits (one per drained batch group); each snapshot")
	fmt.Fprintln(e.out, "      swap also checkpoints (full snapshot write + WAL rotation) off the hot path.")
	return nil
}
