package main

import (
	"fmt"
	"sort"

	"octopus/internal/bench"
	"octopus/internal/datagen"
	"octopus/internal/graph"
	"octopus/internal/mia"
	"octopus/internal/rng"
	"octopus/internal/tags"
	"octopus/internal/tic"
	"octopus/internal/topic"
)

// E7 — keyword-suggestion quality: greedy vs exhaustive vs baselines.
func runE7(e *env) error {
	ds, err := e.smallDS()
	if err != nil {
		return err
	}
	ix, err := tags.BuildIndex(ds.Truth, tags.IndexOptions{Polls: 4096, Seed: e.seed ^ 0xe7})
	if err != nil {
		return err
	}
	sugg := tags.NewSuggester(ix, ds.TruthWords, nil)
	r := rng.New(e.seed ^ 0x77)

	// Targets: users with nonzero estimated influence.
	var targets []graph.NodeID
	for u := 0; u < ds.Graph.NumNodes() && len(targets) < 8; u++ {
		if ix.MaxSpreadEstimate(graph.NodeID(u)) > 2 {
			targets = append(targets, graph.NodeID(u))
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("no influential targets")
	}

	tab := bench.NewTable("E7: suggestion quality, k=2, pool=12 candidates (means over targets)",
		"method", "mean est. spread", "vs exhaustive %", "mean latency", "sets evaluated")
	type acc struct {
		spread float64
		sets   int
		timer  bench.Timer
	}
	var greedy, exhaustive, random, frequency acc
	vocab := ds.TruthWords.Vocab()
	for _, u := range targets {
		var sg, sx *tags.Suggestion
		greedy.timer.Time(func() {
			sg, err = sugg.Suggest(u, tags.SuggestOptions{K: 2, MaxCandidates: 12})
		})
		if err != nil {
			return err
		}
		exhaustive.timer.Time(func() {
			sx, err = sugg.Suggest(u, tags.SuggestOptions{K: 2, MaxCandidates: 12, Exhaustive: true})
		})
		if err != nil {
			return err
		}
		greedy.spread += sg.Spread
		greedy.sets += sg.Stats.SetsEvaluated
		exhaustive.spread += sx.Spread
		exhaustive.sets += sx.Stats.SetsEvaluated

		// Random baseline: random 2 keywords from the vocabulary.
		var rs float64
		random.timer.Time(func() {
			kws := []string{vocab[r.Intn(len(vocab))], vocab[r.Intn(len(vocab))]}
			gamma, _ := ds.TruthWords.InferGamma(kws)
			rs = ix.SpreadEstimate(u, gamma)
		})
		random.spread += rs
		random.sets += 1

		// Frequency baseline: the 2 globally most frequent keywords in
		// the log (ignores the target user entirely).
		var fs float64
		frequency.timer.Time(func() {
			kws := topKeywordsByFrequency(ds, 2)
			gamma, _ := ds.TruthWords.InferGamma(kws)
			fs = ix.SpreadEstimate(u, gamma)
		})
		frequency.spread += fs
		frequency.sets += 1
	}
	n := float64(len(targets))
	base := exhaustive.spread / n
	row := func(name string, a acc) {
		pct := 100.0
		if base > 0 {
			pct = 100 * (a.spread / n) / base
		}
		tab.Row(name, a.spread/n, pct, a.timer.Mean(), a.sets/len(targets))
	}
	row("greedy (ours)", greedy)
	row("exhaustive (optimal)", exhaustive)
	row("random keywords", random)
	row("global frequency", frequency)
	tab.Render(e.out)
	fmt.Fprintln(e.out, "paper claim: sampling+greedy reaches near-optimal spread at a "+
		"fraction of exhaustive cost; naive baselines fall far behind")
	return nil
}

// E8 — influencer index: lazy sampling effectiveness and query speedup.
func runE8(e *env) error {
	ds, err := e.smallDS()
	if err != nil {
		return err
	}
	m := ds.Truth
	gamma := topic.Uniform(m.NumTopics())
	hub := hubOf(ds)

	tab := bench.NewTable("E8: influencer index vs poll count M",
		"M", "build", "coins flipped", "eager coins", "stored edges",
		"query latency", "MC-from-scratch", "est vs MC")
	sim := tic.NewSimulator(m)
	for _, M := range []int{256, 1024, 4096} {
		var build bench.Timer
		var ix *tags.Index
		build.Time(func() {
			ix, err = tags.BuildIndex(m, tags.IndexOptions{Polls: M, Seed: e.seed ^ uint64(M)})
		})
		if err != nil {
			return err
		}
		var tQ bench.Timer
		var est float64
		for i := 0; i < 20; i++ {
			tQ.Time(func() { est = ix.SpreadEstimate(hub, gamma) })
		}
		// MC from scratch with the sample count matched to M.
		var tMC bench.Timer
		var mc float64
		tMC.Time(func() {
			mc = sim.EstimateSpread([]graph.NodeID{hub}, gamma, M, rng.New(e.seed^0x8))
		})
		ratio := 0.0
		if mc > 0 {
			ratio = est / mc
		}
		eager := M * ds.Graph.NumEdges()
		tab.Row(M, build.Mean(), ix.CoinsFlipped(), eager, ix.EdgesMaterialized(),
			tQ.Mean(), tMC.Mean(), ratio)
	}
	tab.Render(e.out)
	fmt.Fprintln(e.out, "paper claim: the index avoids online sampling from scratch; lazy "+
		"propagation materializes a small fraction of eager coins")
	return nil
}

// E9 — MIA threshold trade-off: tree size, latency, accuracy vs MC.
func runE9(e *env) error {
	ds, err := e.smallDS()
	if err != nil {
		return err
	}
	m := ds.Truth
	gamma := topic.Uniform(m.NumTopics())
	prob := func(ed graph.EdgeID) float64 { return m.EdgeProb(ed, gamma) }
	calc := mia.NewCalc(ds.Graph)
	sim := tic.NewSimulator(m)
	hub := hubOf(ds)
	mc := sim.EstimateSpread([]graph.NodeID{hub}, gamma, 20000, rng.New(e.seed^0x9))

	tab := bench.NewTable(fmt.Sprintf("E9: MIA threshold θ at the hub (MC reference σ=%.2f)", mc),
		"theta", "latency", "tree nodes", "MIA spread", "rel. err %")
	for _, theta := range []float64{0.1, 0.05, 0.01, 0.005, 0.001} {
		var t bench.Timer
		var tree *mia.Tree
		for i := 0; i < 20; i++ {
			t.Time(func() { tree = calc.MIOA(prob, hub, theta, 0) })
		}
		spread := tree.Spread()
		relErr := 100 * (spread - mc) / mc
		tab.Row(theta, t.Mean(), tree.Size(), spread, relErr)
	}
	tab.Render(e.out)
	fmt.Fprintln(e.out, "paper claim: smaller θ grows the arborescence at higher cost — the "+
		"interactivity knob. MIA restricts influence to max-probability paths, so it "+
		"underestimates full IC spread on dense graphs by construction; the trend "+
		"(monotone growth toward the MIA limit) is the reproduced shape")
	return nil
}

// topKeywordsByFrequency returns the k most frequent keywords across the
// dataset's action-log items.
func topKeywordsByFrequency(ds *datagen.Dataset, k int) []string {
	counts := map[string]int{}
	for _, ep := range ds.Log.Episodes {
		for _, w := range ep.Item.Keywords {
			counts[w]++
		}
	}
	type kc struct {
		w string
		c int
	}
	var all []kc
	for w, c := range counts {
		all = append(all, kc{w, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].w < all[j].w
	})
	var out []string
	for i := 0; i < k && i < len(all); i++ {
		out = append(out, all[i].w)
	}
	return out
}
