package main

import (
	"fmt"
	"strings"
	"time"

	"octopus/internal/bench"
	"octopus/internal/core"
	"octopus/internal/graph"
	"octopus/internal/tags"
)

// E1 — Scenario 1: keyword-based influential user discovery. Reproduces
// the Figure 1 result table: top-k influencers for a keyword query, the
// diversity observation (seeds cover distinct aspects), and latency.
func runE1(e *env) error {
	sys, ds, err := e.citationSystem()
	if err != nil {
		return err
	}
	queries := [][]string{
		{"mining", "pattern"},  // "data mining"
		{"learning", "neural"}, // ML
		{"social", "network", "influence"},
		{"query", "index"}, // databases
	}
	tab := bench.NewTable("E1: top-10 influencers per keyword query",
		"query", "latency", "spread@10", "distinct aspects", "top seeds (aspect)")
	for _, q := range queries {
		var res *core.DiscoverResult
		var t bench.Timer
		t.Time(func() {
			res, err = sys.DiscoverInfluencers(q, core.DiscoverOptions{K: 10, Theta: 0.01})
		})
		if err != nil {
			return err
		}
		aspects := map[string]bool{}
		var tops []string
		for i, s := range res.Seeds {
			aspects[s.TopTopicName] = true
			if i < 3 {
				tops = append(tops, fmt.Sprintf("%s (%s)", s.Name, s.TopTopicName))
			}
		}
		tab.Row(strings.Join(q, "+"), t.Mean(),
			res.Seeds[len(res.Seeds)-1].Spread, len(aspects), strings.Join(tops, "; "))
	}
	tab.Render(e.out)
	fmt.Fprintf(e.out, "paper claim: IM objective returns diverse influencers covering "+
		"different aspects, online (instant) on a %d-node network\n", ds.Graph.NumNodes())
	return nil
}

// E2 — Scenario 2: personalized influential keyword suggestion with the
// radar interpretation.
func runE2(e *env) error {
	sys, ds, err := e.citationSystem()
	if err != nil {
		return err
	}
	// Target the five most-cited authors with keyword pools.
	type cand struct {
		u   graph.NodeID
		deg int
	}
	var cands []cand
	for u := 0; u < ds.Graph.NumNodes(); u++ {
		if len(sys.UserKeywords(graph.NodeID(u))) >= 4 {
			cands = append(cands, cand{graph.NodeID(u), ds.Graph.OutDegree(graph.NodeID(u))})
		}
	}
	if len(cands) == 0 {
		return fmt.Errorf("no keyword-rich users")
	}
	for i := 0; i < len(cands); i++ {
		for j := i + 1; j < len(cands); j++ {
			if cands[j].deg > cands[i].deg {
				cands[i], cands[j] = cands[j], cands[i]
			}
		}
	}
	if len(cands) > 5 {
		cands = cands[:5]
	}
	tab := bench.NewTable("E2: suggested selling points (k=3) per target user",
		"user", "latency", "keywords", "est. spread", "radar top topic")
	for _, c := range cands {
		var sug *tags.Suggestion
		var t bench.Timer
		t.Time(func() {
			sug, err = sys.SuggestKeywords(c.u, 3, tags.SuggestOptions{})
		})
		if err != nil {
			return err
		}
		radarTop := "-"
		if len(sug.Keywords) > 0 {
			if r, err := sys.Radar(sug.Keywords[0]); err == nil {
				radarTop = r.Topics[r.Values.Top(1)[0]]
			}
		}
		tab.Row(ds.Graph.Name(c.u), t.Mean(),
			strings.Join(sug.Keywords, ","), sug.Spread, radarTop)
	}
	tab.Render(e.out)
	fmt.Fprintln(e.out, "paper claim: suggested keywords capture the user's influential "+
		"contributions; radar diagram interprets each keyword over topics")
	return nil
}

// E3 — Scenario 3: interactive influential path exploration (forward and
// reverse MIA trees, click-highlight).
func runE3(e *env) error {
	sys, ds, err := e.citationSystem()
	if err != nil {
		return err
	}
	hub := hubOf(ds)
	// Reverse exploration targets a *recent* author (max in-degree): the
	// "Archana Ganapathi" query of Scenario 3 — who influences her.
	var sink graph.NodeID
	bestIn := -1
	for u := 0; u < ds.Graph.NumNodes(); u++ {
		if d := ds.Graph.InDegree(graph.NodeID(u)); d > bestIn {
			bestIn, sink = d, graph.NodeID(u)
		}
	}
	tab := bench.NewTable("E3: influential path exploration (hub forward, most-cited-by reverse)",
		"direction", "theta", "latency", "tree nodes", "spread", "max depth")
	for _, dir := range []bool{false, true} {
		for _, theta := range []float64{0.05, 0.01, 0.005} {
			root := hub
			if dir {
				root = sink
			}
			var pg *core.PathGraph
			var t bench.Timer
			t.Time(func() {
				pg, err = sys.InfluencePaths(root, core.PathOptions{
					Theta: theta, Reverse: dir, MaxNodes: 100000,
				})
			})
			if err != nil {
				return err
			}
			maxDepth := int32(0)
			for _, n := range pg.Nodes {
				if n.Depth > maxDepth {
					maxDepth = n.Depth
				}
			}
			name := "influences"
			if dir {
				name = "influenced-by"
			}
			tab.Row(name, theta, t.Mean(), len(pg.Nodes), pg.Spread, maxDepth)
		}
	}
	tab.Render(e.out)

	// Click-highlight micro-benchmark.
	pg, err := sys.InfluencePaths(hub, core.PathOptions{Theta: 0.01, MaxNodes: 100000})
	if err != nil {
		return err
	}
	if len(pg.Nodes) > 1 {
		var t bench.Timer
		leaf := pg.Nodes[len(pg.Nodes)-1].ID
		var path []graph.NodeID
		for i := 0; i < 100; i++ {
			t.Time(func() { path, _ = sys.HighlightPath(pg, leaf) })
		}
		fmt.Fprintf(e.out, "click-highlight: path len %d in %s mean (%d trials)\n",
			len(path), t.Mean(), t.N())
	}
	fmt.Fprintln(e.out, "paper claim: node size shows influence effect; clicking highlights "+
		"the root-to-node path; both directions supported")
	return nil
}

var _ = time.Now // keep time imported even if timings move
