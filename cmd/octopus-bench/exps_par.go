package main

import (
	"fmt"
	"reflect"
	"runtime"
	"time"

	"octopus/internal/bench"
	"octopus/internal/core"
	"octopus/internal/datagen"
	"octopus/internal/graph"
	"octopus/internal/otim"
	"octopus/internal/stream"
	"octopus/internal/tags"
)

// E15 — build/fold parallelism: wall-clock of the offline pipeline
// (EM learning + OTIM index + influencer index) at Workers ∈
// {1, 2, 4, GOMAXPROCS}, asserting every parallel build serves exactly
// the same answers as the serial one; then the snapshot-fold (swap
// latency) speedup a live system gains from the same knob.
func runE15(e *env) error {
	if err := runE15Build(e); err != nil {
		return err
	}
	return runE15Fold(e)
}

// e15Workers returns the worker counts to sweep: 1, 2 and 4 always run
// — even on a small host the sweep then still proves parallel builds
// are identical to serial ones — plus GOMAXPROCS when larger.
func e15Workers() []int {
	out := []int{1, 2, 4}
	if cores := runtime.GOMAXPROCS(0); cores > 4 {
		out = append(out, cores)
	}
	return out
}

func runE15Build(e *env) error {
	ds, err := datagen.Citation(datagen.CitationConfig{
		Authors: e.sizes.parAuthors, Topics: 6, Seed: e.seed ^ 0xe15,
	})
	if err != nil {
		return err
	}
	cfg := core.Config{
		Topics: 6, // learn with EM — the dominant cost the knob targets
		OTIM:   otim.BuildOptions{Samples: 18},
		Tags:   tags.IndexOptions{Polls: 2048},
		Seed:   e.seed ^ 0x15e,
	}

	workers := e15Workers()
	tab := bench.NewTable(
		fmt.Sprintf("E15a: offline pipeline (EM + OTIM + influencer index) on %d authors, %d cores",
			e.sizes.parAuthors, runtime.GOMAXPROCS(0)),
		"workers", "build", "speedup", "identical")
	var serial *core.System
	var serialDur time.Duration
	var speedupAtMax float64
	for _, w := range workers {
		c := cfg
		c.Workers = w
		t0 := time.Now()
		sys, err := core.Build(ds.Graph, ds.Log, c)
		if err != nil {
			return err
		}
		dur := time.Since(t0)
		identical := "-"
		if serial == nil {
			serial, serialDur = sys, dur
		} else {
			if err := sameAnswers(serial, sys); err != nil {
				return fmt.Errorf("workers=%d diverges from serial build: %w", w, err)
			}
			identical = "yes"
		}
		speedupAtMax = serialDur.Seconds() / dur.Seconds()
		tab.Row(w, dur.Round(time.Millisecond), fmt.Sprintf("%.2f×", speedupAtMax), identical)
	}
	tab.Render(e.out)
	if last := workers[len(workers)-1]; runtime.GOMAXPROCS(0) >= 4 && speedupAtMax < 2 {
		fmt.Fprintf(e.out, "WARNING: %.2f× at %d workers is below the 2× target (noisy/throttled host?)\n",
			speedupAtMax, last)
	}
	return nil
}

// sameAnswers cross-checks two systems through their query surface:
// identical stats, identical influential-user answers for several
// keyword queries, and identical keyword suggestions for the hub user.
func sameAnswers(a, b *core.System) error {
	if sa, sb := a.Stats(), b.Stats(); sa != sb {
		return fmt.Errorf("stats differ: %+v vs %+v", sa, sb)
	}
	for _, q := range [][]string{{"mining", "data"}, {"learning"}, {"systems", "query"}} {
		ra, err := a.DiscoverInfluencers(q, core.DiscoverOptions{K: 8})
		if err != nil {
			return err
		}
		rb, err := b.DiscoverInfluencers(q, core.DiscoverOptions{K: 8})
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(ra, rb) {
			return fmt.Errorf("query %v differs: %+v vs %+v", q, ra, rb)
		}
	}
	hub := graph.NodeID(0)
	bestDeg := -1
	for u := 0; u < a.Graph().NumNodes(); u++ {
		if d := a.Graph().OutDegree(graph.NodeID(u)); d > bestDeg {
			bestDeg, hub = d, graph.NodeID(u)
		}
	}
	sa, err := a.SuggestKeywords(hub, 3, tags.SuggestOptions{})
	if err != nil {
		return err
	}
	sb, err := b.SuggestKeywords(hub, 3, tags.SuggestOptions{})
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(sa, sb) {
		return fmt.Errorf("suggestions differ: %+v vs %+v", sa, sb)
	}
	return nil
}

// runE15Fold measures how the Workers knob shrinks snapshot-swap
// latency: the same held-out edge batch is folded into fresh
// LiveSystems configured with increasing rebuild parallelism.
func runE15Fold(e *env) error {
	h, err := buildStreamHoldout(e)
	if err != nil {
		return err
	}
	tab := bench.NewTable(
		fmt.Sprintf("E15b: snapshot fold (swap) latency vs fold workers (%d-author stream, %d held-out edges)",
			e.sizes.streamAuthors, len(h.edges)),
		"workers", "swap", "speedup")
	var serialSwap time.Duration
	for _, w := range e15Workers() {
		ls, err := stream.NewLiveSystem(h.base, stream.Config{
			RebuildEvents: len(h.edges) * 10, // fold only on ForceSnapshot
			Workers:       w,
		})
		if err != nil {
			return err
		}
		if err := ls.IngestEdges(h.edges); err != nil {
			ls.Close()
			return err
		}
		if err := ls.ForceSnapshot(); err != nil {
			ls.Close()
			return err
		}
		swap := ls.Snapshot().SwapLatency
		ls.Close()
		if serialSwap == 0 {
			serialSwap = swap
		}
		tab.Row(w, swap.Round(time.Millisecond),
			fmt.Sprintf("%.2f×", serialSwap.Seconds()/swap.Seconds()))
	}
	tab.Render(e.out)
	fmt.Fprintln(e.out, "note: folds rebuild indexes only (the model carries over), so fold speedup")
	fmt.Fprintln(e.out, "      tracks the index stages; EM-heavy cold builds are E15a's territory.")
	return nil
}
