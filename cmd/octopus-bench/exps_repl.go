package main

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"time"

	"octopus/internal/actionlog"
	"octopus/internal/bench"
	"octopus/internal/core"
	"octopus/internal/datagen"
	"octopus/internal/otim"
	"octopus/internal/repl"
	"octopus/internal/server"
	"octopus/internal/store"
	"octopus/internal/stream"
)

// E19 — read-replica fleet: a durable leader ships its checkpoint
// snapshot and tails its WAL to followers over /api/replicate. Three
// claims are measured:
//
//  1. catch-up — a follower bootstrapping against a leader with a WAL
//     backlog maps the snapshot zero-copy (no copy fallbacks asserted)
//     and replays the backlog; reported as records/sec from Start to
//     the first caught-up observation;
//  2. steady-state lag — with followers tailing, each ingest round's
//     time from leader append to follower apply (median and p90 over
//     the rounds);
//  3. leader overhead — the leader's query p50 with two caught-up
//     followers long-polling vs with none, on an identical folded
//     system. The overhead must stay within 10% (plus a 500µs noise
//     floor for sub-millisecond medians).
const (
	e19OverheadRatio = 1.10
	e19NoiseFloor    = 500 * time.Microsecond
)

func runE19(e *env) error {
	dir, err := os.MkdirTemp("", "octopus-e19-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	ds, err := datagen.Citation(datagen.CitationConfig{
		Authors: e.sizes.replAuthors, Topics: 6, Seed: e.seed ^ 0xe19,
	})
	if err != nil {
		return err
	}
	sys, err := core.Build(ds.Graph, ds.Log, core.Config{
		GroundTruth:      ds.Truth,
		GroundTruthWords: ds.TruthWords,
		TopicNames:       ds.TopicNames,
		OTIM:             otim.BuildOptions{Samples: 12},
		Seed:             e.seed ^ 0x19e,
	})
	if err != nil {
		return err
	}
	d, _, err := store.Open(filepath.Join(dir, "leader"))
	if err != nil {
		return err
	}
	ls, err := stream.NewLiveSystem(sys, stream.Config{
		RebuildEvents: 1 << 20, IncrementalFold: true, Store: d,
	})
	if err != nil {
		return err
	}
	defer ls.Close()
	// First checkpoint: the snapshot followers bootstrap from.
	if err := ls.ForceSnapshot(); err != nil {
		return err
	}
	// The cache would answer repeated queries without running the engine,
	// hiding any replication overhead — disable it for the measurement.
	srv := server.NewLiveWith(ls, server.Options{CacheEntries: -1})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// feed appends one edge + one item + one action per unit: three WAL
	// records through the leader's synchronous ingest path.
	nodes := int32(sys.Graph().NumNodes())
	round := int32(0)
	feed := func(units int) error {
		for i := 0; i < units; i++ {
			r := round
			round++
			if err := ls.IngestEdges([]stream.EdgeEvent{{
				Src: r % 50, Dst: nodes + r, DstName: fmt.Sprintf("repl-user-%d", r),
			}}); err != nil {
				return err
			}
			item := 500_000 + r
			if err := ls.IngestActions(
				[]actionlog.Item{{ID: item, Keywords: []string{"mining", "graphs"}}},
				[]actionlog.Action{{User: r % 100, Item: item, Time: int64(1_000_000 + r)}},
			); err != nil {
				return err
			}
		}
		return nil
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startFollower := func(name string) (*repl.Follower, error) {
		return repl.Start(ctx, repl.Config{
			Leader:       ts.URL,
			Dir:          filepath.Join(dir, name),
			PollWait:     2 * time.Second,
			RetryBackoff: 50 * time.Millisecond,
		})
	}
	// caughtUp waits until the follower's applied position reaches the
	// leader's current durable frontier.
	caughtUp := func(f *repl.Follower) error {
		epoch, durable := d.WALEpoch(), d.WALDurable()
		deadline := time.Now().Add(60 * time.Second)
		for {
			st := f.Stats()
			if st.CaughtUp && st.Epoch == epoch && st.Offset >= durable {
				return nil
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("follower stuck behind: %+v (leader epoch %d durable %d)", st, epoch, durable)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	// ---- 1. Catch-up: a WAL backlog exists before the follower starts.
	if err := feed(e.sizes.replBacklog); err != nil {
		return err
	}
	t0 := time.Now()
	f1, err := startFollower("follower-1")
	if err != nil {
		return err
	}
	defer f1.Close()
	if err := caughtUp(f1); err != nil {
		return err
	}
	catchup := time.Since(t0)
	st1 := f1.Stats()
	if ms, ok := f1.MapStats(); !ok {
		return fmt.Errorf("follower serving without a mapped snapshot")
	} else if ms.CopyFallbacks != 0 {
		return fmt.Errorf("%d copy fallbacks mapping the shipped snapshot", ms.CopyFallbacks)
	}
	rate := float64(st1.RecordsQueued) / catchup.Seconds()

	// ---- 2. Steady-state lag: per-round leader-append → follower-apply.
	f2, err := startFollower("follower-2")
	if err != nil {
		return err
	}
	defer f2.Close()
	if err := caughtUp(f2); err != nil {
		return err
	}
	lags := make([]time.Duration, 0, e.sizes.replRounds)
	for i := 0; i < e.sizes.replRounds; i++ {
		t := time.Now()
		if err := feed(20); err != nil {
			return err
		}
		if err := caughtUp(f1); err != nil {
			return err
		}
		lags = append(lags, time.Since(t))
	}
	sort.Slice(lags, func(i, j int) bool { return lags[i] < lags[j] })
	lagP50 := lags[len(lags)/2]
	lagP90 := lags[len(lags)*9/10]

	// ---- 3. Leader overhead: query p50 with two caught-up followers
	// long-polling vs none. Fold first so both windows run over the same
	// overlay-free system; no ingest happens inside the windows, so the
	// only difference is the parked replication traffic.
	if err := ls.ForceSnapshot(); err != nil {
		return err
	}
	if err := caughtUp(f1); err != nil {
		return err
	}
	if err := caughtUp(f2); err != nil {
		return err
	}
	queries := []string{"mining+data", "learning", "systems", "retrieval+information"}
	measureP50 := func() (time.Duration, error) {
		lat := make([]time.Duration, 0, e.sizes.replQueries)
		for i := 0; i < e.sizes.replQueries+10; i++ {
			q := queries[i%len(queries)]
			t := time.Now()
			resp, err := http.Get(ts.URL + "/api/im?q=" + q + "&k=10&samples=1")
			if err != nil {
				return 0, err
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return 0, fmt.Errorf("leader query returned %d", resp.StatusCode)
			}
			if i >= 10 { // first 10 are warmup
				lat = append(lat, time.Since(t))
			}
		}
		sort.Slice(lat, func(i, j int) bool { return lat[i] < lat[j] })
		return lat[len(lat)/2], nil
	}
	p50With, err := measureP50()
	if err != nil {
		return err
	}
	if err := f1.Close(); err != nil {
		return err
	}
	if err := f2.Close(); err != nil {
		return err
	}
	p50Without, err := measureP50()
	if err != nil {
		return err
	}
	overhead := p50With.Seconds() / p50Without.Seconds()

	tab := bench.NewTable(
		"E19: read-replica fleet — catch-up, steady-state lag, leader overhead (2 followers)",
		"metric", "value")
	tab.Row("backlog catch-up", fmt.Sprintf("%d records in %s (%.0f records/s)",
		st1.RecordsQueued, catchup.Round(time.Millisecond), rate))
	tab.Row("snapshot transfer", fmt.Sprintf("%.1f MiB fetched, backing zero-copy", float64(st1.SnapshotBytes)/(1<<20)))
	tab.Row("steady-state lag p50", lagP50.Round(time.Millisecond))
	tab.Row("steady-state lag p90", lagP90.Round(time.Millisecond))
	tab.Row("leader query p50, 2 followers", p50With.Round(time.Microsecond))
	tab.Row("leader query p50, 0 followers", p50Without.Round(time.Microsecond))
	tab.Row("overhead", fmt.Sprintf("%.2f× (target ≤%.2f×)", overhead, e19OverheadRatio))
	tab.Render(e.out)

	e.record("catchup_records", st1.RecordsQueued)
	e.record("catchup_records_per_sec", rate)
	e.record("snapshot_bytes", st1.SnapshotBytes)
	e.record("lag_p50_ms", float64(lagP50)/1e6)
	e.record("lag_p90_ms", float64(lagP90)/1e6)
	e.record("leader_p50_with_followers_ms", float64(p50With)/1e6)
	e.record("leader_p50_without_followers_ms", float64(p50Without)/1e6)
	e.record("leader_overhead_ratio", overhead)

	if limit := time.Duration(float64(p50Without)*e19OverheadRatio) + e19NoiseFloor; p50With > limit {
		return fmt.Errorf("leader p50 with followers %s exceeds %s (%.0f%% of the bare p50 %s plus noise floor)",
			p50With, limit, e19OverheadRatio*100, p50Without)
	}
	return nil
}
