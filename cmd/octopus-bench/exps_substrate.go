package main

import (
	"fmt"
	"time"

	"octopus/internal/bench"
	"octopus/internal/datagen"
	"octopus/internal/em"
	"octopus/internal/graph"
	"octopus/internal/im"
	"octopus/internal/ris"
	"octopus/internal/rng"
	"octopus/internal/tic"
	"octopus/internal/topic"
)

// E10 — substrate scalability: cascades/sec, RR sets/sec, IMM time vs n.
func runE10(e *env) error {
	tab := bench.NewTable("E10: substrate throughput vs graph size",
		"n", "edges", "MC cascades/s", "RR sets/s", "IMM k=20", "IMM RR sets")
	for _, n := range e.sizes.scaleNodes {
		ds, err := datagen.Citation(datagen.CitationConfig{
			Authors: n, Topics: 8, Papers: 10, Seed: e.seed ^ uint64(n),
		})
		if err != nil {
			return err
		}
		m := ds.Truth
		gamma := topic.Uniform(8)
		sim := tic.NewSimulator(m)
		r := rng.New(e.seed)

		// MC cascade throughput.
		const casc = 2000
		start := time.Now()
		for i := 0; i < casc; i++ {
			sim.Cascade([]graph.NodeID{graph.NodeID(i % n)}, gamma, r, nil)
		}
		cascPerSec := float64(casc) / time.Since(start).Seconds()

		// RR-set throughput.
		const rrs = 2000
		start = time.Now()
		ris.Generate(m, gamma, rrs, rng.New(e.seed^1))
		rrPerSec := float64(rrs) / time.Since(start).Seconds()

		// IMM end-to-end.
		var tIMM bench.Timer
		var res *ris.IMMResult
		tIMM.Time(func() {
			res, err = ris.IMM(ds.Graph, m.Weights(gamma), ris.IMMOptions{
				K: 20, Epsilon: 0.3, Seed: e.seed ^ 2,
			})
		})
		if err != nil {
			return err
		}
		tab.Row(n, ds.Graph.NumEdges(), cascPerSec, rrPerSec, tIMM.Mean(), res.SetsUsed)
	}
	tab.Render(e.out)
	fmt.Fprintln(e.out, "shape check: throughput decays roughly linearly with graph size; "+
		"IMM cost grows with n (the per-query cost the online engine amortizes away)")
	return nil
}

// E11 — EM learning quality vs number of episodes.
func runE11(e *env) error {
	// Fixed ground-truth world; vary observed episodes.
	ds, err := datagen.Citation(datagen.CitationConfig{
		Authors: 500, Topics: 4,
		Papers: e.sizes.emEpisodes[len(e.sizes.emEpisodes)-1],
		Seed:   e.seed ^ 0xe11,
	})
	if err != nil {
		return err
	}
	tab := bench.NewTable("E11: EM parameter recovery vs observed episodes (Z=4)",
		"episodes", "learn time", "final LL", "keyword sep. acc %", "edge MAE")
	for _, eps := range e.sizes.emEpisodes {
		sub := *ds.Log
		if eps < len(sub.Episodes) {
			sub.Episodes = sub.Episodes[:eps]
		}
		var t bench.Timer
		var res *em.Result
		t.Time(func() {
			res, err = em.Learn(ds.Graph, &sub, em.Config{Topics: 4, Iterations: 12, Seed: e.seed})
		})
		if err != nil {
			return err
		}
		acc := keywordSeparationAccuracy(ds, res)
		mae := edgeMAE(ds, res)
		tab.Row(eps, t.Mean(), res.LogLikelihood[len(res.LogLikelihood)-1], 100*acc, mae)
	}
	tab.Render(e.out)
	fmt.Fprintln(e.out, "shape check: more observed propagation tightens both the keyword "+
		"model and the edge probabilities (EM of Section II-B)")
	return nil
}

// keywordSeparationAccuracy: for each true topic, infer γ from its theme
// keywords under the learned model; count how many map to distinct
// learned topics with high confidence.
func keywordSeparationAccuracy(ds *datagen.Dataset, res *em.Result) float64 {
	z := ds.TruthWords.NumTopics()
	used := map[int]bool{}
	hits := 0
	for zt := 0; zt < z; zt++ {
		kws := ds.TruthWords.TopKeywords(zt, 3)
		gamma, _ := res.Keywords.InferGamma(kws)
		top := gamma.Top(1)[0]
		if gamma[top] > 0.5 && !used[top] {
			used[top] = true
			hits++
		}
	}
	return float64(hits) / float64(z)
}

// edgeMAE: mean absolute error between learned and true edge probability
// under the uniform mixture (topic permutation cancels out in the
// mixture).
func edgeMAE(ds *datagen.Dataset, res *em.Result) float64 {
	gamma := topic.Uniform(ds.Truth.NumTopics())
	truth := ds.Truth.Weights(gamma)
	learned := res.Propagation.Weights(gamma)
	sum := 0.0
	for e := range truth {
		d := truth[e] - learned[e]
		if d < 0 {
			d = -d
		}
		sum += d
	}
	return sum / float64(len(truth))
}

// E12 — classical IM baselines at equal k: the expected quality ordering
// CELF ≈ IMM > DegreeDiscount ≈ SingleDiscount > PageRank > Random.
func runE12(e *env) error {
	ds, err := e.socialDS()
	if err != nil {
		return err
	}
	m := ds.Truth
	gamma := topic.Uniform(m.NumTopics())
	w := m.Weights(gamma)
	g := ds.Graph
	const k = 20
	evalSamples := 300

	type algo struct {
		name  string
		seeds func() ([]graph.NodeID, error)
	}
	algos := []algo{
		{"IMM", func() ([]graph.NodeID, error) {
			res, err := ris.IMM(g, w, ris.IMMOptions{K: k, Epsilon: 0.3, Seed: e.seed})
			if err != nil {
				return nil, err
			}
			return res.Seeds, nil
		}},
		{"DegreeDiscount", func() ([]graph.NodeID, error) { return im.DegreeDiscount(g, w, k), nil }},
		{"SingleDiscount", func() ([]graph.NodeID, error) { return im.SingleDiscount(g, w, k), nil }},
		{"WeightedDegree", func() ([]graph.NodeID, error) { return im.TopWeightedDegree(g, w, k), nil }},
		{"PageRank", func() ([]graph.NodeID, error) { return im.PageRank(g, w, k, 30, 0.85), nil }},
		{"Random", func() ([]graph.NodeID, error) { return im.Random(g, k, rng.New(e.seed^3)), nil }},
	}
	tab := bench.NewTable(
		fmt.Sprintf("E12: seed quality at k=%d on the %d-node social graph (MC-evaluated)", k, g.NumNodes()),
		"algorithm", "select time", "spread@5", "spread@10", "spread@20")
	for _, a := range algos {
		var t bench.Timer
		var seeds []graph.NodeID
		t.Time(func() { seeds, err = a.seeds() })
		if err != nil {
			return err
		}
		spreads := im.EstimateSpreads(m, gamma, seeds, evalSamples, e.seed^0x12)
		s5, s10, s20 := spreads[minI(4, len(spreads)-1)],
			spreads[minI(9, len(spreads)-1)], spreads[len(spreads)-1]
		tab.Row(a.name, t.Mean(), s5, s10, s20)
	}
	tab.Render(e.out)
	fmt.Fprintln(e.out, "shape check: IMM dominates; discount heuristics close; "+
		"random far behind — matching the IM literature the paper cites")
	return nil
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
