package main

import (
	"fmt"
	"io"

	"octopus/internal/core"
	"octopus/internal/datagen"
	"octopus/internal/graph"
	"octopus/internal/otim"
)

// env lazily builds and caches the shared datasets and systems.
type env struct {
	sizes sizes
	seed  uint64
	out   io.Writer
	// extras collects the numbers the running experiment wants persisted
	// in its BENCH_<id>.json record (reset by the runner per experiment).
	extras map[string]any

	citation  *datagen.Dataset
	citSystem *core.System

	small       *datagen.Dataset
	smallSystem *core.System

	social *datagen.Dataset
}

func (e *env) citationDS() (*datagen.Dataset, error) {
	if e.citation == nil {
		ds, err := datagen.Citation(datagen.CitationConfig{
			Authors: e.sizes.citationAuthors,
			Papers:  e.sizes.citationPapers,
			Topics:  8,
			Seed:    e.seed,
		})
		if err != nil {
			return nil, err
		}
		e.citation = ds
		fmt.Fprintf(e.out, "[citation dataset: %d authors, %d edges, %d episodes]\n",
			ds.Graph.NumNodes(), ds.Graph.NumEdges(), len(ds.Log.Episodes))
	}
	return e.citation, nil
}

func (e *env) citationSystem() (*core.System, *datagen.Dataset, error) {
	ds, err := e.citationDS()
	if err != nil {
		return nil, nil, err
	}
	if e.citSystem == nil {
		sys, err := core.Build(ds.Graph, ds.Log, core.Config{
			GroundTruth:      ds.Truth,
			GroundTruthWords: ds.TruthWords,
			TopicNames:       ds.TopicNames,
			OTIM:             otim.BuildOptions{Samples: 4 * ds.Truth.NumTopics(), SampleK: 20},
			Seed:             e.seed ^ 0xbeef,
		})
		if err != nil {
			return nil, nil, err
		}
		e.citSystem = sys
	}
	return e.citSystem, ds, nil
}

func (e *env) smallDS() (*datagen.Dataset, error) {
	if e.small == nil {
		ds, err := datagen.Citation(datagen.CitationConfig{
			Authors: e.sizes.smallAuthors,
			Topics:  4,
			Seed:    e.seed ^ 0x5151,
		})
		if err != nil {
			return nil, err
		}
		e.small = ds
	}
	return e.small, nil
}

func (e *env) smallSys() (*core.System, *datagen.Dataset, error) {
	ds, err := e.smallDS()
	if err != nil {
		return nil, nil, err
	}
	if e.smallSystem == nil {
		sys, err := core.Build(ds.Graph, ds.Log, core.Config{
			GroundTruth:      ds.Truth,
			GroundTruthWords: ds.TruthWords,
			TopicNames:       ds.TopicNames,
			Seed:             e.seed ^ 0xcafe,
		})
		if err != nil {
			return nil, nil, err
		}
		e.smallSystem = sys
	}
	return e.smallSystem, ds, nil
}

func (e *env) socialDS() (*datagen.Dataset, error) {
	if e.social == nil {
		ds, err := datagen.Social(datagen.SocialConfig{
			Users: e.sizes.socialUsers,
			Seed:  e.seed ^ 0x7777,
		})
		if err != nil {
			return nil, err
		}
		e.social = ds
		fmt.Fprintf(e.out, "[social dataset: %d users, %d edges]\n",
			ds.Graph.NumNodes(), ds.Graph.NumEdges())
	}
	return e.social, nil
}

// record stashes a result value for the experiment's BENCH_<id>.json
// record (a no-op when -json is not set before the runner allocates the
// map).
func (e *env) record(key string, v any) {
	if e.extras != nil {
		e.extras[key] = v
	}
}

// hubOf returns the highest weighted-out-degree node — the canonical
// "Michael Jordan" query target of the demo scenarios.
func hubOf(ds *datagen.Dataset) graph.NodeID {
	g := ds.Graph
	var best graph.NodeID
	bestDeg := -1
	for u := 0; u < g.NumNodes(); u++ {
		if d := g.OutDegree(graph.NodeID(u)); d > bestDeg {
			bestDeg, best = d, graph.NodeID(u)
		}
	}
	return best
}
