package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sort"
	"sync"
	"time"

	"octopus/internal/actionlog"
	"octopus/internal/bench"
	"octopus/internal/core"
	"octopus/internal/datagen"
	"octopus/internal/graph"
	"octopus/internal/server"
	"octopus/internal/stream"
)

// buildQueryPool derives a pool of keyword queries from the dataset's
// actual vocabulary: the poolSize most frequent item keywords, as
// singles and pairs. Rank 0 is the most popular query; a Zipf draw over
// ranks reproduces the skew of a real query log.
func buildQueryPool(ds *datagen.Dataset, poolSize int) []string {
	freq := map[string]int{}
	for _, ep := range ds.Log.Episodes {
		for _, w := range ep.Item.Keywords {
			freq[w]++
		}
	}
	words := make([]string, 0, len(freq))
	for w := range freq {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool {
		if freq[words[i]] != freq[words[j]] {
			return freq[words[i]] > freq[words[j]]
		}
		return words[i] < words[j]
	})
	if len(words) > poolSize {
		words = words[:poolSize]
	}
	pool := make([]string, 0, poolSize)
	for i, w := range words {
		if i%2 == 0 || len(words) < 4 {
			pool = append(pool, w)
		} else {
			pool = append(pool, w+" "+words[(i+5)%len(words)])
		}
		if len(pool) == poolSize {
			break
		}
	}
	return pool
}

// serveRun aggregates one closed-loop load run.
type serveRun struct {
	reqs    int
	errs    int // non-200, non-429 responses
	shed429 int
	wall    time.Duration
	lat     bench.Timer

	hits, misses, stale, coalesced, shed uint64 // server-side, from /api/metrics
}

// serveLoad drives clients closed-loop client goroutines against the
// base URL, each issuing perClient IM queries drawn Zipf-skewed from
// the pool, and folds in the server's own /api/metrics counters. extra
// is appended verbatim to every query string (e.g. "&explain=1").
func serveLoad(base string, pool []string, clients, perClient int, seed uint64, extra string) (*serveRun, error) {
	hc := &http.Client{Timeout: 30 * time.Second}
	timers := make([]bench.Timer, clients)
	errs := make([]int, clients)
	shed := make([]int, clients)
	var firstErr error
	var errMu sync.Mutex

	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(seed) + int64(c)))
			zipf := rand.NewZipf(rng, 1.2, 1, uint64(len(pool)-1))
			for i := 0; i < perClient; i++ {
				q := pool[zipf.Uint64()]
				t0 := time.Now()
				resp, err := hc.Get(base + "/api/im?q=" + url.QueryEscape(q) + "&k=5" + extra)
				if err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				timers[c].Add(time.Since(t0))
				switch {
				case resp.StatusCode == http.StatusTooManyRequests:
					shed[c]++
				case resp.StatusCode != http.StatusOK:
					errs[c]++
				}
			}
		}(c)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	// Merge per-client results (per-client timers avoid lock contention
	// on the hot path).
	run := &serveRun{wall: time.Since(start)}
	for c := 0; c < clients; c++ {
		run.reqs += timers[c].N()
		run.errs += errs[c]
		run.shed429 += shed[c]
		for _, d := range timers[c].Samples() {
			run.lat.Add(d)
		}
	}
	if err := fetchServeMetrics(hc, base, run); err != nil {
		return nil, err
	}
	return run, nil
}

func fetchServeMetrics(hc *http.Client, base string, run *serveRun) error {
	resp, err := hc.Get(base + "/api/metrics")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var doc struct {
		Endpoints map[string]struct {
			Hits      uint64 `json:"cacheHits"`
			Misses    uint64 `json:"cacheMisses"`
			Stale     uint64 `json:"cacheStale"`
			Coalesced uint64 `json:"coalesced"`
			Shed      uint64 `json:"shed"`
		} `json:"endpoints"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return fmt.Errorf("decode /api/metrics: %w", err)
	}
	im := doc.Endpoints["im"]
	run.hits, run.misses, run.stale = im.Hits, im.Misses, im.Stale
	run.coalesced, run.shed = im.Coalesced, im.Shed
	return nil
}

// shedUnderLongQuery verifies admission control: with one engine slot,
// a long targeted-IM query (heavy reverse-reachable sampling over the
// full graph as audience) occupies the gate while cheap probe queries
// keep arriving; each probe must be answered 429 immediately rather
// than queued behind it. Returns the number of shed responses.
func shedUnderLongQuery(base string, pool []string, nodes int) (int, error) {
	hc := &http.Client{Timeout: 5 * time.Minute}
	audience := make([]int32, 0, nodes)
	for u := 0; u < nodes; u++ {
		audience = append(audience, int32(u))
	}
	body, err := json.Marshal(map[string]any{
		"q": pool[0], "audience": audience, "k": 20, "rrSamples": 200_000,
	})
	if err != nil {
		return 0, err
	}
	done := make(chan error, 1)
	go func() {
		resp, err := hc.Post(base+"/api/im/targeted", "application/json", bytes.NewReader(body))
		if err != nil {
			done <- err
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			done <- fmt.Errorf("targeted query status %d", resp.StatusCode)
			return
		}
		done <- nil
	}()
	time.Sleep(10 * time.Millisecond) // let the targeted query claim the slot
	shed := 0
	for {
		select {
		case err := <-done:
			return shed, err
		default:
		}
		resp, err := hc.Get(base + "/api/complete?prefix=A&k=3")
		if err != nil {
			return shed, err
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusTooManyRequests {
			shed++
		}
	}
}

// E16 — the query-serving layer under a Zipf-skewed keyword workload:
// closed-loop load against the HTTP server with the result cache off vs
// on vs on-under-ingest-driven-swaps, plus an admission-control run
// that must shed with 429 rather than queue. Asserts the cache buys
// ≥5× on p50 latency and that the in-flight bound actually sheds.
func runE16(e *env) error {
	ds, err := datagen.Citation(datagen.CitationConfig{
		Authors: e.sizes.serveAuthors,
		Topics:  6,
		Seed:    e.seed ^ 0xe16,
	})
	if err != nil {
		return err
	}
	sys, err := core.Build(ds.Graph, ds.Log, core.Config{
		GroundTruth:      ds.Truth,
		GroundTruthWords: ds.TruthWords,
		TopicNames:       ds.TopicNames,
		Seed:             e.seed ^ 0x1616,
	})
	if err != nil {
		return err
	}
	pool := buildQueryPool(ds, e.sizes.servePool)
	clients, perClient := e.sizes.serveClients, e.sizes.serveRequests
	fmt.Fprintf(e.out, "[serve workload: %d-author system, %d distinct queries (Zipf s=1.2), %d clients × %d requests]\n",
		ds.Graph.NumNodes(), len(pool), clients, perClient)

	tab := bench.NewTable("E16: closed-loop IM serving, Zipf-skewed keyword workload",
		"config", "reqs", "errs", "req/s", "p50", "p99", "hits", "misses", "stale", "coalesced")

	row := func(label string, run *serveRun) {
		tab.Row(label, run.reqs, run.errs,
			fmt.Sprintf("%.0f", float64(run.reqs)/run.wall.Seconds()),
			run.lat.Percentile(50), run.lat.Percentile(99),
			run.hits, run.misses, run.stale, run.coalesced)
	}

	// 1. Cache off: every request pays a full engine run.
	srvOff := httptest.NewServer(server.NewWith(sys, server.Options{CacheEntries: -1}))
	off, err := serveLoad(srvOff.URL, pool, clients, perClient, e.seed, "")
	srvOff.Close()
	if err != nil {
		return err
	}
	row("cache off", off)

	// 1b. Cache off, explain on: the same uncached workload with per-query
	// cost accounting and the JSON breakdown spliced into every response
	// measures what ?explain=1 costs on top of a full engine run.
	srvExp := httptest.NewServer(server.NewWith(sys, server.Options{CacheEntries: -1}))
	explain, err := serveLoad(srvExp.URL, pool, clients, perClient, e.seed, "&explain=1")
	srvExp.Close()
	if err != nil {
		return err
	}
	row("cache off, explain on", explain)

	// 2. Cache on: repeated popular queries hit.
	srvOn := httptest.NewServer(server.NewWith(sys, server.Options{}))
	on, err := serveLoad(srvOn.URL, pool, clients, perClient, e.seed, "")
	srvOn.Close()
	if err != nil {
		return err
	}
	row("cache on", on)

	// 2b. Cache on, tracing off: the same workload without the request
	// tracer measures what the span bookkeeping costs on the cached-hit
	// path (target ≤5% p50; the hard bar below is generous because p50
	// here is microseconds and host noise dominates).
	srvNT := httptest.NewServer(server.NewWith(sys, server.Options{TraceRing: -1}))
	noTrace, err := serveLoad(srvNT.URL, pool, clients, perClient, e.seed, "")
	srvNT.Close()
	if err != nil {
		return err
	}
	row("cache on, no tracing", noTrace)

	// 3. Cache on while ingest-driven snapshot swaps invalidate it.
	ls, err := stream.NewLiveSystem(sys, stream.Config{RebuildEvents: 1 << 30, BufferBatches: 16})
	if err != nil {
		return err
	}
	srvLive := httptest.NewServer(server.NewLiveWith(ls, server.Options{}))
	stopFeed := make(chan struct{})
	var feedWG sync.WaitGroup
	var swaps int
	feedWG.Add(1)
	go func() {
		defer feedWG.Done()
		rng := rand.New(rand.NewSource(int64(e.seed) ^ 0x16f))
		nextItem := int32(10_000_000)
		for {
			select {
			case <-stopFeed:
				return
			default:
			}
			items := make([]actionlog.Item, 0, 8)
			acts := make([]actionlog.Action, 0, 16)
			for j := 0; j < 8; j++ {
				id := nextItem
				nextItem++
				items = append(items, actionlog.Item{ID: id, Keywords: []string{pool[rng.Intn(len(pool))]}})
				acts = append(acts,
					actionlog.Action{User: graph.NodeID(rng.Intn(ds.Graph.NumNodes())), Item: id, Time: int64(id)},
					actionlog.Action{User: graph.NodeID(rng.Intn(ds.Graph.NumNodes())), Item: id, Time: int64(id) + 1})
			}
			if err := ls.IngestActions(items, acts); err != nil {
				return
			}
			if err := ls.ForceSnapshot(); err != nil {
				return
			}
			swaps++
		}
	}()
	live, err := serveLoad(srvLive.URL, pool, clients, perClient, e.seed, "")
	close(stopFeed)
	feedWG.Wait()
	srvLive.Close()
	closeErr := ls.Close()
	if err != nil {
		return err
	}
	if closeErr != nil {
		return closeErr
	}
	row(fmt.Sprintf("cache on + %d swaps", swaps), live)

	// 4. Admission control: one engine slot, uncached. A long targeted-IM
	// query occupies the slot while im queries keep arriving — they must
	// be shed with 429 immediately, never queued behind it. (Occupying
	// the slot explicitly makes the check deterministic even on a
	// single-core host, where short CPU-bound handlers rarely overlap.)
	srvShed := httptest.NewServer(server.NewWith(sys, server.Options{CacheEntries: -1, MaxInflight: 1}))
	shed429, shedErr := shedUnderLongQuery(srvShed.URL, pool, ds.Graph.NumNodes())
	srvShed.Close()
	if shedErr != nil {
		return shedErr
	}
	tab.Row("max-inflight=1", "-", "-", "-", "-", "-", "-", "-",
		fmt.Sprintf("429s=%d", shed429), "-")
	tab.Render(e.out)

	if off.errs > 0 || on.errs > 0 || live.errs > 0 {
		return fmt.Errorf("unexpected non-200/429 responses (off=%d on=%d live=%d)",
			off.errs, on.errs, live.errs)
	}
	p50Off, p50On := off.lat.Percentile(50), on.lat.Percentile(50)
	speedup := float64(p50Off) / float64(p50On)
	fmt.Fprintf(e.out, "cache p50 speedup: %.1f× (%s → %s); hit rate %.0f%%; live-run stale invalidations: %d\n",
		speedup, p50Off, p50On, 100*float64(on.hits)/float64(on.reqs), live.stale)
	p50NT := noTrace.lat.Percentile(50)
	overhead := float64(p50On)/float64(p50NT) - 1
	fmt.Fprintf(e.out, "tracing overhead on cached hits: %+.1f%% p50 (%s traced vs %s untraced; target ≤5%%)\n",
		100*overhead, p50On, p50NT)
	p50Exp := explain.lat.Percentile(50)
	expOverhead := float64(p50Exp)/float64(p50Off) - 1
	fmt.Fprintf(e.out, "explain overhead on uncached queries: %+.1f%% p50 (%s explained vs %s plain; target ≤5%%)\n",
		100*expOverhead, p50Exp, p50Off)
	e.record("cacheP50SpeedupX", speedup)
	e.record("cacheHitRate", float64(on.hits)/float64(on.reqs))
	e.record("tracingOverheadP50Frac", overhead)
	e.record("explainOverheadP50Frac", expOverhead)
	e.record("shed429", shed429)
	e.record("liveSwapStaleEvictions", live.stale)
	if speedup < 5 {
		return fmt.Errorf("cache p50 speedup %.1f× below the 5× bar", speedup)
	}
	if on.hits == 0 {
		return fmt.Errorf("cache-on run recorded no hits")
	}
	// Hard bar at 25%: well above the 5% target, because a sub-50µs p50
	// on a loopback HTTP round trip swings more than 5% run to run from
	// scheduler noise alone. Regressions that matter clear 25% easily.
	if overhead > 0.25 {
		return fmt.Errorf("tracing overhead %.0f%% p50 exceeds the 25%% hard bar", 100*overhead)
	}
	if explain.errs > 0 {
		return fmt.Errorf("explain run recorded %d non-200/429 responses", explain.errs)
	}
	// Same generous hard bar as tracing: the counters are plain adds on
	// work the engine does anyway, so anything past 25% is a real leak.
	if expOverhead > 0.25 {
		return fmt.Errorf("explain overhead %.0f%% p50 exceeds the 25%% hard bar", 100*expOverhead)
	}
	if shed429 == 0 {
		return fmt.Errorf("max-inflight=1 run shed no requests")
	}
	fmt.Fprintln(e.out, "note: the cache is generation-tagged — the live run's stale count is swaps doing")
	fmt.Fprintln(e.out, "      their job; 429s under max-inflight=1 are load shedding, not failures.")
	return nil
}
