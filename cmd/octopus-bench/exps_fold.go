package main

import (
	"fmt"
	"reflect"
	"time"

	"octopus/internal/actionlog"
	"octopus/internal/core"
	"octopus/internal/datagen"
	"octopus/internal/graph"
	"octopus/internal/otim"
	"octopus/internal/rng"
	"octopus/internal/stream"
	"octopus/internal/tic"
)

// E17 — incremental snapshot folds: full-rebuild vs delta-maintenance
// swap latency across the delta shapes a live system sees, with a
// query-level identity check against a from-scratch rebuild at the same
// seed for every row. The dominant live delta — actions and items with
// few or no new edges — must fold ≥5× faster than a full rebuild;
// edge-heavy deltas are reported together with their genuine update
// mass (the nodes whose precomputed spreads actually change), which is
// the hard floor any exact incremental scheme pays.
func runE17(e *env) error {
	// EdgeScale 0.1 keeps ground-truth activation probabilities in the
	// range EM learns from real logs (~0.01–0.15); the generator default
	// of 0.4 makes every hub's influence region span the whole graph,
	// which no θ-bounded MIA deployment would tolerate.
	ds, err := datagen.Citation(datagen.CitationConfig{
		Authors:   e.sizes.foldAuthors,
		Topics:    6,
		EdgeScale: 0.1,
		Seed:      e.seed ^ 0xe17,
	})
	if err != nil {
		return err
	}

	// Hold out every 16th edge (~6%) so edge deltas replay real,
	// structurally plausible edges; shuffle so a delta is spread across
	// the graph like live traffic instead of clustered on one CSR hub.
	full := ds.Graph
	bb := graph.NewBuilder(full.NumNodes())
	var held [][2]graph.NodeID
	i := 0
	full.EachEdge(func(_ graph.EdgeID, u, v graph.NodeID) {
		if i%16 == 15 {
			held = append(held, [2]graph.NodeID{u, v})
		} else {
			bb.AddEdge(u, v)
		}
		i++
	})
	r := rng.New(e.seed ^ 0x71e)
	for j := len(held) - 1; j > 0; j-- {
		k := r.Intn(j + 1)
		held[j], held[k] = held[k], held[j]
	}
	baseG := bb.Build()
	baseModel, err := tic.Remap(ds.Truth, baseG, nil)
	if err != nil {
		return err
	}
	base, err := core.Build(baseG, ds.Log, core.Config{
		GroundTruth:      baseModel,
		GroundTruthWords: ds.TruthWords,
		OTIM:             otim.BuildOptions{Samples: 2 * ds.Truth.NumTopics(), SampleK: 10},
		Seed:             e.seed ^ 0x17e,
	})
	if err != nil {
		return err
	}
	n := baseG.NumNodes()
	baseEdges := baseG.NumEdges()
	fmt.Fprintf(e.out, "base system: %d nodes, %d edges, %d held-out edges, %d topic samples\n",
		n, baseEdges, len(held), base.OTIMIndex().NumSamples())
	fmt.Fprintf(e.out, "%-14s %-8s %-8s %-10s %-10s %-8s %s\n",
		"delta", "edges", "dirty", "full(ms)", "inc(ms)", "speedup", "identical")

	prior := stream.WeightedJaccardPrior(1)
	maxItem := int32(0)
	for _, ep := range ds.Log.Episodes {
		if ep.Item.ID > maxItem {
			maxItem = ep.Item.ID
		}
	}

	type deltaCase struct {
		name     string
		edges    [][2]graph.NodeID
		items    []actionlog.Item
		acts     []actionlog.Action
		assert5x bool
	}
	// The actions row is the live system's bread and butter: one full
	// RebuildEvents batch of social actions with no graph growth.
	actItems := make([]actionlog.Item, 64)
	var actActs []actionlog.Action
	for k := range actItems {
		actItems[k] = actionlog.Item{
			ID:       maxItem + int32(k) + 1,
			Keywords: []string{"mining", "data", "systems"},
		}
		for a := 0; a < 64; a++ {
			actActs = append(actActs, actionlog.Action{
				User: graph.NodeID(r.Intn(n)), Item: actItems[k].ID, Time: int64(a),
			})
		}
	}
	cases := []deltaCase{
		{name: "actions(4096)", items: actItems, acts: actActs, assert5x: true},
		{name: "edges 0.1%", edges: held[:max(1, baseEdges/1000)]},
		{name: "edges 1%", edges: held[:max(1, baseEdges/100)]},
	}

	for _, dc := range cases {
		// Shared swap prep, exactly as stream.LiveSystem.rebuild pays it:
		// graph re-CSR and model remap only when edges arrived, log merge
		// proportional to the delta.
		prepStart := time.Now()
		g, prop := baseG, baseModel
		if len(dc.edges) > 0 {
			gb := graph.NewBuilder(n)
			gb.AddGraph(baseG)
			priors := make(map[[2]graph.NodeID][]float64, len(dc.edges))
			for _, ed := range dc.edges {
				gb.AddEdge(ed[0], ed[1])
				priors[ed] = prior(base, ed[0], ed[1])
			}
			g = gb.Build()
			if prop, err = tic.Remap(baseModel, g, func(u, v graph.NodeID) []float64 {
				return priors[[2]graph.NodeID{u, v}]
			}); err != nil {
				return err
			}
		}
		log := actionlog.Merge(base.ActionLog(), g.NumNodes(), dc.items, dc.acts)
		prep := time.Since(prepStart)

		cfg := base.BuildConfig()
		cfg.FoldMaxDirtyFrac = 1 // measure the machinery, not the fallback policy

		incStart := time.Now()
		srcs := make([]graph.NodeID, len(dc.edges))
		dsts := make([]graph.NodeID, len(dc.edges))
		for j, ed := range dc.edges {
			srcs[j], dsts[j] = ed[0], ed[1]
		}
		folded, fs, err := core.Fold(base, g, log, prop, srcs, dsts, cfg)
		if err != nil {
			return fmt.Errorf("E17 %s: %w", dc.name, err)
		}
		inc := prep + time.Since(incStart)

		fullStart := time.Now()
		cfg.GroundTruth = prop
		cfg.GroundTruthWords = base.Keywords()
		rebuilt, err := core.Build(g, log, cfg)
		if err != nil {
			return err
		}
		fullDur := prep + time.Since(fullStart)

		if err := foldIdentical(rebuilt, folded); err != nil {
			return fmt.Errorf("E17 %s: %w", dc.name, err)
		}
		speedup := float64(fullDur) / float64(inc)
		fmt.Fprintf(e.out, "%-14s %-8d %-8d %-10.1f %-10.1f %-8.1f yes\n",
			dc.name, len(dc.edges), fs.DirtyNodes,
			float64(fullDur.Microseconds())/1e3, float64(inc.Microseconds())/1e3, speedup)
		e.record("fold_"+dc.name, map[string]any{
			"edges": len(dc.edges), "dirtyNodes": fs.DirtyNodes,
			"fullMillis":        float64(fullDur.Microseconds()) / 1e3,
			"incrementalMillis": float64(inc.Microseconds()) / 1e3,
			"speedupX":          speedup,
			"otimFoldMillis":    float64(fs.Timings.OTIM.Microseconds()) / 1e3,
			"tagsFoldMillis":    float64(fs.Timings.Tags.Microseconds()) / 1e3,
			"derivedMillis":     float64(fs.Timings.Derived.Microseconds()) / 1e3,
		})
		if dc.assert5x && speedup < 5 {
			return fmt.Errorf("E17 %s: incremental fold speedup %.1f× below the 5× bar", dc.name, speedup)
		}
	}
	fmt.Fprintln(e.out, "note: edge rows pay the genuine update mass — the dirty column counts nodes")
	fmt.Fprintln(e.out, "whose precomputed spreads truly change, an exactness floor no incremental")
	fmt.Fprintln(e.out, "scheme can skip; action-dominated deltas (the live-traffic majority) fold in")
	fmt.Fprintln(e.out, "near-constant time because graph, model and both indexes are reused wholesale.")
	return nil
}

// foldIdentical compares the rebuilt and folded systems query-by-query
// across the three analysis services plus system stats.
func foldIdentical(full, fold *core.System) error {
	if a, b := full.Stats(), fold.Stats(); a != b {
		return fmt.Errorf("stats diverge: full %+v, fold %+v", a, b)
	}
	for _, q := range [][]string{{"mining", "data"}, {"learning"}, {"systems", "query"}} {
		for _, useSamples := range []bool{false, true} {
			ra, err1 := full.DiscoverInfluencers(q, core.DiscoverOptions{K: 8, UseSamples: useSamples})
			rb, err2 := fold.DiscoverInfluencers(q, core.DiscoverOptions{K: 8, UseSamples: useSamples})
			if err1 != nil || err2 != nil {
				return fmt.Errorf("query %v: %v %v", q, err1, err2)
			}
			if !reflect.DeepEqual(ra, rb) {
				return fmt.Errorf("query %v (samples=%v) diverges", q, useSamples)
			}
		}
	}
	n := full.Graph().NumNodes()
	for u := 0; u < n; u += n/7 + 1 {
		ka, err1 := full.RankUserKeywords(graph.NodeID(u), 5)
		kb, err2 := fold.RankUserKeywords(graph.NodeID(u), 5)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("keywords of %d: %v %v", u, err1, err2)
		}
		if !reflect.DeepEqual(ka, kb) {
			return fmt.Errorf("keyword ranks of %d diverge", u)
		}
		pa, err1 := full.InfluencePaths(graph.NodeID(u), core.PathOptions{Theta: 0.01, MaxNodes: 60})
		pb, err2 := fold.InfluencePaths(graph.NodeID(u), core.PathOptions{Theta: 0.01, MaxNodes: 60})
		if err1 != nil || err2 != nil {
			return fmt.Errorf("paths of %d: %v %v", u, err1, err2)
		}
		if !reflect.DeepEqual(pa, pb) {
			return fmt.Errorf("paths of %d diverge", u)
		}
	}
	return nil
}
