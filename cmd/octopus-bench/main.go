// Command octopus-bench runs the experiment suite E1–E20 defined in
// DESIGN.md §4 and prints one table per experiment — the reproduction of
// every figure/scenario of the OCTOPUS demo paper plus the engine claims
// it builds on (E13: streaming ingestion; E14: persistence and
// crash-recovery costs; E15: build-pipeline parallelism; E16: the
// query-serving layer — result cache, request coalescing and admission
// control under a Zipf-skewed closed-loop workload; E17: incremental
// snapshot folds — swap latency vs delta size with a query-level
// identity check against full rebuilds; E18: zero-copy mapped snapshot
// serving — cold-start-to-first-query, memory deltas and a mapped-vs-
// heap query identity check; E19: read-replica fleet — follower
// catch-up throughput, steady-state replication lag and leader query
// overhead with followers attached; E20: sharded scatter-gather
// serving — coordinator latency, merge overhead and per-shard corpus
// density across 1/2/4-shard fleets, with a 1-shard byte-identity
// gate). EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	octopus-bench [-quick] [-only E1,E4] [-seed N] [-json DIR]
//
// -quick shrinks dataset sizes for fast smoke runs. -json DIR
// additionally writes one BENCH_<id>.json per experiment: id, title,
// wall time, the runtime-observability delta over the run (allocation,
// GC cycles and pause time, goroutines) and any numbers the experiment
// chose to record — so a changed result can be read together with the
// runtime context that produced it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"octopus/internal/bench"
)

type sizes struct {
	citationAuthors int
	citationPapers  int
	socialUsers     int
	smallAuthors    int // for exhaustive-baseline experiments
	scaleNodes      []int
	emEpisodes      []int
	queryReps       int
	streamAuthors   int   // ingest-replay experiment dataset size
	streamBatch     int   // events per replayed ingest batch
	snapshotNodes   []int // cold-start experiment dataset sizes
	mmapNodes       []int // zero-copy serving experiment dataset sizes
	parAuthors      int   // build-parallelism experiment dataset size
	serveAuthors    int   // query-serving experiment dataset size
	serveClients    int   // closed-loop load-generator clients
	serveRequests   int   // requests per client per configuration
	servePool       int   // distinct queries in the Zipf-skewed pool
	foldAuthors     int   // incremental-fold experiment dataset size
	replAuthors     int   // replication experiment dataset size
	replBacklog     int   // feed units (3 WAL records each) in the catch-up backlog
	replRounds      int   // steady-state lag measurement rounds
	replQueries     int   // leader queries per overhead window
	shardAuthors    int   // scatter-gather experiment dataset size
	shardFleets     []int // fleet sizes to compare (shard counts)
	shardQueries    int   // measured requests per fleet configuration
}

func defaultSizes(quick bool) sizes {
	if quick {
		return sizes{
			citationAuthors: 1500,
			citationPapers:  2000,
			socialUsers:     3000,
			smallAuthors:    400,
			scaleNodes:      []int{1000, 2000, 4000},
			emEpisodes:      []int{500, 1500},
			queryReps:       5,
			streamAuthors:   800,
			streamBatch:     128,
			snapshotNodes:   []int{1000, 2000},
			mmapNodes:       []int{2000},
			parAuthors:      700,
			serveAuthors:    800,
			serveClients:    4,
			serveRequests:   150,
			servePool:       64,
			foldAuthors:     3000,
			replAuthors:     800,
			replBacklog:     500,
			replRounds:      8,
			replQueries:     40,
			shardAuthors:    800,
			shardFleets:     []int{1, 2, 4},
			shardQueries:    40,
		}
	}
	return sizes{
		citationAuthors: 8000,
		citationPapers:  12000,
		socialUsers:     20000,
		smallAuthors:    1200,
		scaleNodes:      []int{5000, 20000, 60000},
		emEpisodes:      []int{1000, 4000, 12000},
		queryReps:       10,
		streamAuthors:   3000,
		streamBatch:     256,
		snapshotNodes:   []int{3000, 8000},
		mmapNodes:       []int{8000, 20000},
		parAuthors:      2500,
		serveAuthors:    2500,
		serveClients:    8,
		serveRequests:   400,
		servePool:       128,
		foldAuthors:     4000,
		replAuthors:     2500,
		replBacklog:     2000,
		replRounds:      15,
		replQueries:     120,
		shardAuthors:    2500,
		shardFleets:     []int{1, 2, 4},
		shardQueries:    100,
	}
}

type experiment struct {
	id    string
	title string
	run   func(*env) error
}

func main() {
	quick := flag.Bool("quick", false, "use small datasets for a fast smoke run")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	seed := flag.Uint64("seed", 1, "base random seed")
	jsonDir := flag.String("json", "", "directory for per-experiment BENCH_<id>.json result records")
	flag.Parse()

	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	e := &env{sizes: defaultSizes(*quick), seed: *seed, out: os.Stdout}
	experiments := []experiment{
		{"E1", "Keyword-based influential user discovery (Scenario 1 / Fig. 1)", runE1},
		{"E2", "Personalized influential keyword suggestion (Scenario 2 / Fig. 1)", runE2},
		{"E3", "Interactive influential path exploration (Scenario 3 / Fig. 1)", runE3},
		{"E4", "Online best-effort vs naive per-query IM (II-C latency claim)", runE4},
		{"E5", "Bound pruning effectiveness (OTIM ablation)", runE5},
		{"E6", "Topic-sample index: hit rate and speedup", runE6},
		{"E7", "Keyword suggestion quality vs exhaustive and baselines", runE7},
		{"E8", "Influencer index: lazy sampling and query speedup", runE8},
		{"E9", "MIA threshold trade-off: size, latency, accuracy", runE9},
		{"E10", "Substrate scalability: cascades, RR sets, IMM vs n", runE10},
		{"E11", "EM model learning: parameter recovery vs episodes", runE11},
		{"E12", "Classical IM baselines at equal k (sanity shape)", runE12},
		{"E13", "Streaming ingestion: replay throughput, swap latency, staleness", runE13},
		{"E14", "Persistence: snapshot cold-start speedup and WAL ingest overhead", runE14},
		{"E15", "Build/fold parallelism: pipeline speedup vs workers, determinism check", runE15},
		{"E16", "Query-serving layer: result cache, coalescing, admission control under Zipf load", runE16},
		{"E17", "Incremental snapshot folds: swap latency vs delta size, identity vs full rebuild", runE17},
		{"E18", "Zero-copy snapshot serving: mapped vs heap cold-start-to-first-query, memory, identity", runE18},
		{"E19", "Read-replica fleet: snapshot shipping + WAL tailing — catch-up, lag, leader overhead", runE19},
		{"E20", "Sharded scatter-gather: coordinator latency, merge overhead, corpus density vs fleet size", runE20},
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(strings.ToUpper(id))] = true
		}
	}

	fmt.Fprintf(e.out, "octopus-bench: quick=%v seed=%d started %s\n",
		*quick, *seed, time.Now().Format(time.RFC3339))
	failed := 0
	for _, ex := range experiments {
		if len(want) > 0 && !want[ex.id] {
			continue
		}
		fmt.Fprintf(e.out, "\n######## %s — %s\n", ex.id, ex.title)
		e.extras = map[string]any{}
		before := bench.ReadObs()
		start := time.Now()
		err := ex.run(e)
		elapsed := time.Since(start)
		delta := bench.Delta(before, bench.ReadObs())
		if err != nil {
			failed++
			fmt.Fprintf(e.out, "%s FAILED: %v\n", ex.id, err)
		} else {
			fmt.Fprintf(e.out, "[%s completed in %s]\n", ex.id, elapsed.Round(time.Millisecond))
		}
		if *jsonDir != "" {
			writeRecord(*jsonDir, ex, *quick, *seed, err, delta, e.extras)
		}
	}
	if failed > 0 {
		fmt.Fprintf(e.out, "\n%d experiment(s) failed\n", failed)
		os.Exit(1)
	}
}

// benchRecord is the schema of one BENCH_<id>.json file.
type benchRecord struct {
	ID      string         `json:"id"`
	Title   string         `json:"title"`
	Quick   bool           `json:"quick"`
	Seed    uint64         `json:"seed"`
	OK      bool           `json:"ok"`
	Error   string         `json:"error,omitempty"`
	Obs     bench.ObsDelta `json:"obs"`
	Results map[string]any `json:"results,omitempty"`
}

func writeRecord(dir string, ex experiment, quick bool, seed uint64, runErr error, delta bench.ObsDelta, extras map[string]any) {
	rec := benchRecord{
		ID: ex.id, Title: ex.title, Quick: quick, Seed: seed,
		OK: runErr == nil, Obs: delta, Results: extras,
	}
	if runErr != nil {
		rec.Error = runErr.Error()
	}
	b, err := json.MarshalIndent(rec, "", "  ")
	if err == nil {
		err = os.WriteFile(filepath.Join(dir, "BENCH_"+ex.id+".json"), append(b, '\n'), 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "writing %s record: %v\n", ex.id, err)
	}
}
