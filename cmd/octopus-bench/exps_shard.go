package main

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"time"

	"octopus/internal/bench"
	"octopus/internal/core"
	"octopus/internal/datagen"
	"octopus/internal/otim"
	"octopus/internal/server"
	"octopus/internal/shard"
	"octopus/internal/store"
)

// E20 — sharded scatter-gather serving: the same corpus is split into
// 1/2/4-shard fleets (hash partitioner, fixed seed), every shard served
// from its snapshot file (the exchange format is exercised end to end:
// split → save → load → serve), and a coordinator fans queries out and
// merges. Three claims are measured per fleet size:
//
//  1. query latency — coordinator p50/p99 over a fixed query mix with
//     caching disabled at both tiers, so every request runs the full
//     fan-out/merge path;
//  2. merge overhead — per request, the coordinator's wall time minus
//     the slowest direct shard answer for the same query (the price of
//     the extra hop plus decode/merge/encode), reported as a median;
//  3. corpus density — the largest per-shard snapshot, expressed as how
//     many such shards fit in a GB: the packing bound a placement layer
//     would use.
//
// Correctness gate: the 1-shard coordinator must answer a query table
// byte-identically to a single-process server built from the same
// system — scatter-gather over one shard is the identity function.
func runE20(e *env) error {
	dir, err := os.MkdirTemp("", "octopus-e20-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	ds, err := datagen.Citation(datagen.CitationConfig{
		Authors: e.sizes.shardAuthors, Topics: 6, Seed: e.seed ^ 0xe20,
	})
	if err != nil {
		return err
	}
	full, err := core.Build(ds.Graph, ds.Log, core.Config{
		GroundTruth:      ds.Truth,
		GroundTruthWords: ds.TruthWords,
		TopicNames:       ds.TopicNames,
		OTIM:             otim.BuildOptions{Samples: 12},
		Seed:             e.seed ^ 0x02e,
	})
	if err != nil {
		return err
	}

	// Caching is disabled at every tier: a warm cache would answer the
	// repeated mix from memory and hide the fan-out entirely.
	sopt := server.Options{CacheEntries: -1}
	single := server.NewWith(full, sopt)
	defer single.Close()
	singleTS := httptest.NewServer(single)
	defer singleTS.Close()

	mix := []string{
		"/api/im?q=mining+data&k=10&samples=1",
		"/api/im?q=learning&k=8&samples=1",
		"/api/complete?prefix=A&k=10",
		"/api/radar?keyword=mining",
		"/api/status",
	}

	tab := bench.NewTable(
		"E20: scatter-gather fleets — coordinator latency, merge overhead, corpus density",
		"shards", "coord p50", "coord p99", "slowest-shard p50", "merge overhead p50",
		"max shard snapshot", "shards/GB")
	for _, n := range e.sizes.shardFleets {
		fdir := fmt.Sprintf("%s/fleet-%d", dir, n)
		if err := os.MkdirAll(fdir, 0o755); err != nil {
			return err
		}
		paths, err := shard.WriteFleet(fdir, full, shard.Hash{Seed: e.seed ^ 0xe20}, n)
		if err != nil {
			return err
		}
		var maxBytes int64
		shardTS := make([]*httptest.Server, n)
		addrs := make([]string, n)
		for k, p := range paths {
			fi, err := os.Stat(p)
			if err != nil {
				return err
			}
			if fi.Size() > maxBytes {
				maxBytes = fi.Size()
			}
			sys, err := store.Load(p)
			if err != nil {
				return fmt.Errorf("loading %s: %w", p, err)
			}
			ss := server.NewWith(sys, sopt)
			ts := httptest.NewServer(ss)
			defer ss.Close()
			defer ts.Close()
			shardTS[k] = ts
			addrs[k] = ts.URL
		}
		coord, err := server.NewCoordinator(addrs, sopt, server.CoordinatorOptions{})
		if err != nil {
			return err
		}
		defer coord.Close()
		coordTS := httptest.NewServer(coord)
		defer coordTS.Close()

		if n == 1 {
			if err := e20Identity(coordTS.URL, singleTS.URL, mix); err != nil {
				return fmt.Errorf("1-shard identity: %w", err)
			}
		}

		coordLat := make([]time.Duration, 0, e.sizes.shardQueries)
		overhead := make([]time.Duration, 0, e.sizes.shardQueries)
		shardMax := make([]time.Duration, 0, e.sizes.shardQueries)
		for i := 0; i < e.sizes.shardQueries+5; i++ {
			path := mix[i%len(mix)]
			tc, err := e20Time(coordTS.URL + path)
			if err != nil {
				return err
			}
			// Slowest direct shard answer for the same query: the floor a
			// sequential proxy could not beat; the coordinator's excess over
			// it is the merge tax.
			var worst time.Duration
			for _, ts := range shardTS {
				td, err := e20Time(ts.URL + path)
				if err != nil {
					return err
				}
				if td > worst {
					worst = td
				}
			}
			if i < 5 { // warmup
				continue
			}
			coordLat = append(coordLat, tc)
			shardMax = append(shardMax, worst)
			overhead = append(overhead, tc-worst)
		}
		p50 := quantile(coordLat, 0.50)
		p99 := quantile(coordLat, 0.99)
		shardP50 := quantile(shardMax, 0.50)
		overP50 := quantile(overhead, 0.50)
		perGB := float64(1<<30) / float64(maxBytes)
		tab.Row(n, p50.Round(time.Microsecond), p99.Round(time.Microsecond),
			shardP50.Round(time.Microsecond), overP50.Round(time.Microsecond),
			fmt.Sprintf("%.2f MiB", float64(maxBytes)/(1<<20)),
			fmt.Sprintf("%.0f", perGB))
		e.record(fmt.Sprintf("n%d_coord_p50_ms", n), float64(p50)/1e6)
		e.record(fmt.Sprintf("n%d_coord_p99_ms", n), float64(p99)/1e6)
		e.record(fmt.Sprintf("n%d_merge_overhead_p50_ms", n), float64(overP50)/1e6)
		e.record(fmt.Sprintf("n%d_max_shard_bytes", n), maxBytes)
		e.record(fmt.Sprintf("n%d_shards_per_gb", n), perGB)
	}
	tab.Render(e.out)
	fmt.Fprintln(e.out, "1-shard coordinator verified byte-identical to single-process over the query mix")
	return nil
}

// e20Time issues one GET and returns its wall time, erroring on any
// non-200 or partial (shards-missing) answer — the bench must measure
// complete fan-outs only.
func e20Time(url string) (time.Duration, error) {
	t := time.Now()
	resp, err := http.Get(url)
	if err != nil {
		return 0, err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	if m := resp.Header.Get("X-Octopus-Shards-Missing"); m != "" {
		return 0, fmt.Errorf("GET %s: partial answer, shards %s missing", url, m)
	}
	return time.Since(t), nil
}

// e20Identity asserts the 1-shard coordinator and the single-process
// server answer each query in the mix (plus an explain variant) with
// byte-identical bodies and equal statuses.
func e20Identity(coordURL, singleURL string, mix []string) error {
	table := append(append([]string{}, mix...),
		"/api/im?q=mining+data&k=10&samples=1&explain=1")
	fetch := func(url string) (int, []byte, error) {
		resp, err := http.Get(url)
		if err != nil {
			return 0, nil, err
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		return resp.StatusCode, b, err
	}
	for _, path := range table {
		cs, cb, err := fetch(coordURL + path)
		if err != nil {
			return err
		}
		ss, sb, err := fetch(singleURL + path)
		if err != nil {
			return err
		}
		if cs != ss {
			return fmt.Errorf("%s: coordinator status %d, single-process %d", path, cs, ss)
		}
		if !bytes.Equal(cb, sb) {
			return fmt.Errorf("%s: bodies differ (%d vs %d bytes)", path, len(cb), len(sb))
		}
	}
	return nil
}

// quantile returns the q-quantile of the (unsorted) samples.
func quantile(d []time.Duration, q float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), d...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	i := int(q * float64(len(s)))
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}
