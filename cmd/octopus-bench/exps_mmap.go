package main

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"octopus/internal/bench"
	"octopus/internal/core"
	"octopus/internal/datagen"
	"octopus/internal/otim"
	"octopus/internal/store"
)

// E18 — zero-copy snapshot serving: cold-start-to-first-query of the
// mapped open (store.Map: mmap + shape validation + deferred log
// decode) against the copying open (store.Load: full decode onto the
// heap), on the same snapshot file. Three claims are checked:
//
//  1. payoff — mapped cold start to a first answered influence query is
//     ≥5× faster than the heap path on the large corpus (the assertion
//     gates on corpora of at least e18LargeCorpus authors; smaller
//     sizes — including -quick — are reported but not asserted, since
//     the query itself dominates both paths there);
//  2. memory — the mapped open allocates a small fraction of the heap
//     open (the bulk arrays stay in the page cache) and triggers fewer
//     GC cycles;
//  3. identity — a suite of influence queries answers bit-identically
//     (same users, same float64 spreads) on both backings, with zero
//     copy fallbacks on the aligned v3 framing.
//
// e18LargeCorpus is the smallest corpus the ≥5× payoff assertion
// applies to: below it, decode cost no longer dominates the first
// query and the ratio measures the query engine, not the open path.
const e18LargeCorpus = 20000

func runE18(e *env) error {
	dir, err := os.MkdirTemp("", "octopus-e18-*")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)

	queries := [][]string{{"mining", "data"}, {"learning"}, {"systems"}, {"retrieval", "information"}}
	firstQuery := queries[0]

	tab := bench.NewTable(
		"E18: cold start to first query — heap decode (store.Load) vs zero-copy mmap (store.Map)",
		"authors", "size", "load+query", "map+query", "speedup", "heap Δ load", "heap Δ map", "GC load", "GC map")
	warmTab := bench.NewTable(
		"E18: -mmap-warmup — open and first-query latency, lazy faulting vs prefault at open",
		"authors", "open lazy", "1st query lazy", "open warm", "1st query warm", "warmed")
	worstLarge, asserted := 0.0, false
	for i, n := range e.sizes.mmapNodes {
		ds, err := datagen.Citation(datagen.CitationConfig{
			Authors: n, Topics: 6, Seed: e.seed ^ 0xe18,
		})
		if err != nil {
			return err
		}
		sys, err := core.Build(ds.Graph, ds.Log, core.Config{
			GroundTruth:      ds.Truth,
			GroundTruthWords: ds.TruthWords,
			TopicNames:       ds.TopicNames,
			OTIM:             otim.BuildOptions{Samples: 12},
			Seed:             e.seed ^ 0x18e,
		})
		if err != nil {
			return err
		}
		path := filepath.Join(dir, fmt.Sprintf("model-%d.oct", i))
		if err := store.Save(path, sys); err != nil {
			return err
		}
		fi, err := os.Stat(path)
		if err != nil {
			return err
		}

		// Best of 3 per mode, interleaved so both run against a warm page
		// cache — the comparison is decode cost, not disk cost.
		trial := func(open func() (*core.System, func(), error)) (time.Duration, uint64, uint32, error) {
			var best time.Duration
			var heapDelta uint64
			var gcDelta uint32
			for rep := 0; rep < 3; rep++ {
				runtime.GC()
				var m0, m1 runtime.MemStats
				runtime.ReadMemStats(&m0)
				t0 := time.Now()
				opened, done, err := open()
				if err != nil {
					return 0, 0, 0, err
				}
				// The serving-path first query: online best-effort with the
				// topic-sample index, the configuration the HTTP layer uses.
				if _, err := opened.DiscoverInfluencers(firstQuery, core.DiscoverOptions{K: 10, UseSamples: true}); err != nil {
					done()
					return 0, 0, 0, err
				}
				d := time.Since(t0)
				runtime.ReadMemStats(&m1)
				done()
				if rep == 0 || d < best {
					best = d
					heapDelta = 0 // clamp: a mid-trial GC can shrink the heap
					if m1.HeapAlloc > m0.HeapAlloc {
						heapDelta = m1.HeapAlloc - m0.HeapAlloc
					}
					gcDelta = m1.NumGC - m0.NumGC
				}
			}
			return best, heapDelta, gcDelta, nil
		}
		loadDur, loadHeap, loadGC, err := trial(func() (*core.System, func(), error) {
			s, err := store.Load(path)
			return s, func() {}, err
		})
		if err != nil {
			return err
		}
		mapDur, mapHeap, mapGC, err := trial(func() (*core.System, func(), error) {
			s, m, err := store.Map(path, store.MapOptions{})
			if err != nil {
				return nil, nil, err
			}
			if st := m.Stats(); st.Backing == "mmap" && st.CopyFallbacks != 0 {
				m.Close()
				return nil, nil, fmt.Errorf("%d copy fallbacks on an aligned v3 snapshot", st.CopyFallbacks)
			}
			return s, m.Close, nil
		})
		if err != nil {
			return err
		}

		speedup := loadDur.Seconds() / mapDur.Seconds()
		if n >= e18LargeCorpus && (!asserted || speedup < worstLarge) {
			worstLarge, asserted = speedup, true
		}
		tab.Row(n, fmt.Sprintf("%.1fMiB", float64(fi.Size())/(1<<20)),
			loadDur.Round(time.Microsecond), mapDur.Round(time.Microsecond),
			fmt.Sprintf("%.1f×", speedup),
			fmt.Sprintf("%.1fMiB", float64(loadHeap)/(1<<20)),
			fmt.Sprintf("%.1fMiB", float64(mapHeap)/(1<<20)),
			loadGC, mapGC)
		e.extras[fmt.Sprintf("n%d_speedup", n)] = speedup
		e.extras[fmt.Sprintf("n%d_load_heap_bytes", n)] = loadHeap
		e.extras[fmt.Sprintf("n%d_map_heap_bytes", n)] = mapHeap

		// Warmup satellite: the same mapped open with and without
		// MapOptions.Warmup, open and first query timed separately. The
		// snapshot was just written, so the page cache is hot either way;
		// what warmup moves here is the page-table population (minor
		// faults) from the query path to the open path — on a genuinely
		// cold cache the shift includes the major faults too.
		warmTrial := func(warm bool) (openD, queryD time.Duration, warmed int64, err error) {
			for rep := 0; rep < 3; rep++ {
				t0 := time.Now()
				s, m, err := store.Map(path, store.MapOptions{Warmup: warm})
				if err != nil {
					return 0, 0, 0, err
				}
				od := time.Since(t0)
				t1 := time.Now()
				if _, err := s.DiscoverInfluencers(firstQuery, core.DiscoverOptions{K: 10, UseSamples: true}); err != nil {
					m.Close()
					return 0, 0, 0, err
				}
				qd := time.Since(t1)
				warmed = m.Stats().WarmedBytes
				m.Close()
				if rep == 0 || od+qd < openD+queryD {
					openD, queryD = od, qd
				}
			}
			return openD, queryD, warmed, nil
		}
		lazyOpen, lazyQuery, _, err := warmTrial(false)
		if err != nil {
			return err
		}
		warmOpen, warmQuery, warmedBytes, err := warmTrial(true)
		if err != nil {
			return err
		}
		warmTab.Row(n,
			lazyOpen.Round(time.Microsecond), lazyQuery.Round(time.Microsecond),
			warmOpen.Round(time.Microsecond), warmQuery.Round(time.Microsecond),
			fmt.Sprintf("%.1fMiB", float64(warmedBytes)/(1<<20)))
		e.extras[fmt.Sprintf("n%d_firstq_lazy_ns", n)] = lazyQuery.Nanoseconds()
		e.extras[fmt.Sprintf("n%d_firstq_warm_ns", n)] = warmQuery.Nanoseconds()
		e.extras[fmt.Sprintf("n%d_warmed_bytes", n)] = warmedBytes

		// Query-for-query identity: every query in the suite must answer
		// with the same users and bit-identical spreads on both backings.
		heapSys, err := store.Load(path)
		if err != nil {
			return err
		}
		mapSys, m, err := store.Map(path, store.MapOptions{})
		if err != nil {
			return err
		}
		for _, q := range queries {
			r1, err := heapSys.DiscoverInfluencers(q, core.DiscoverOptions{K: 10})
			if err != nil {
				m.Close()
				return err
			}
			r2, err := mapSys.DiscoverInfluencers(q, core.DiscoverOptions{K: 10})
			if err != nil {
				m.Close()
				return err
			}
			if len(r1.Seeds) != len(r2.Seeds) {
				m.Close()
				return fmt.Errorf("query %v: %d vs %d seeds mapped vs heap", q, len(r1.Seeds), len(r2.Seeds))
			}
			for j := range r1.Seeds {
				if r1.Seeds[j].User != r2.Seeds[j].User || r1.Seeds[j].Spread != r2.Seeds[j].Spread {
					m.Close()
					return fmt.Errorf("query %v seed %d differs mapped vs heap: %+v vs %+v",
						q, j, r1.Seeds[j], r2.Seeds[j])
				}
			}
		}
		m.Close()
	}
	tab.Render(e.out)
	warmTab.Render(e.out)
	if !asserted {
		fmt.Fprintf(e.out, "no corpus ≥%d authors in this run: payoff target not asserted (identity and fallback checks still were)\n", e18LargeCorpus)
		return nil
	}
	fmt.Fprintf(e.out, "large-corpus map-vs-load first-query speedup: %.1f× (target ≥5×)\n", worstLarge)
	e.extras["large_corpus_speedup"] = worstLarge
	if worstLarge < 5 {
		return fmt.Errorf("mapped cold-start speedup %.1f× below the 5× target on the large corpus", worstLarge)
	}
	return nil
}
