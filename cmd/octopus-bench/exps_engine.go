package main

import (
	"fmt"

	"octopus/internal/bench"
	"octopus/internal/im"
	"octopus/internal/otim"
	"octopus/internal/rng"
	"octopus/internal/topic"
)

// queryGammas derives a deterministic set of query topic distributions
// mixing pure topics and sparse Dirichlet draws.
func queryGammas(z, count int, seed uint64) []topic.Dist {
	r := rng.New(seed)
	out := make([]topic.Dist, 0, count)
	for i := 0; i < count; i++ {
		if i%3 == 0 {
			out = append(out, topic.Pure(i%z, z))
		} else {
			out = append(out, topic.Dist(r.DirichletSym(0.3, z)))
		}
	}
	return out
}

// E4 — online best-effort vs naive per-query IM across k.
func runE4(e *env) error {
	sys, ds, err := e.citationSystem()
	if err != nil {
		return err
	}
	m := sys.Propagation()
	ix := sys.OTIMIndex()
	eng := otim.NewEngine(ix)
	gammas := queryGammas(m.NumTopics(), e.sizes.queryReps, e.seed^0xe4)

	tab := bench.NewTable(
		fmt.Sprintf("E4a: mean query latency, %d-node citation graph (avg over %d queries)",
			ds.Graph.NumNodes(), len(gammas)),
		"k", "best-effort", "best-effort+samples", "naive IMM", "naive DegDisc",
		"spread BE", "spread IMM")
	for _, k := range []int{1, 5, 10, 20} {
		var tBE, tBES, tIMM, tDD bench.Timer
		var sBE, sIMM float64
		for qi, gamma := range gammas {
			var res *otim.Result
			tBE.Time(func() { res, err = eng.Query(gamma, otim.QueryOptions{K: k, Theta: 0.01}) })
			if err != nil {
				return err
			}
			sBE += res.Spreads[len(res.Spreads)-1]
			tBES.Time(func() {
				_, err = eng.Query(gamma, otim.QueryOptions{K: k, Theta: 0.01, UseSamples: true})
			})
			if err != nil {
				return err
			}
			var nres *otim.NaiveResult
			tIMM.Time(func() {
				nres, err = otim.NaiveQuery(m, gamma, k, otim.NaiveIMM, 0.01, e.seed+uint64(qi))
			})
			if err != nil {
				return err
			}
			sIMM += nres.Spreads[len(nres.Spreads)-1]
			tDD.Time(func() {
				_, err = otim.NaiveQuery(m, gamma, k, otim.NaiveDegreeDiscount, 0.01, e.seed+uint64(qi))
			})
			if err != nil {
				return err
			}
		}
		n := float64(len(gammas))
		tab.Row(k, tBE.Mean(), tBES.Mean(), tIMM.Mean(), tDD.Mean(), sBE/n, sIMM/n)
	}
	tab.Render(e.out)

	// E4b: exhaustive MIA greedy (identical semantics, no pruning) on the
	// small graph to isolate the best-effort speedup.
	smallSys, smallDS, err := e.smallSys()
	if err != nil {
		return err
	}
	sm := smallSys.Propagation()
	sEng := otim.NewEngine(smallSys.OTIMIndex())
	tab2 := bench.NewTable(
		fmt.Sprintf("E4b: best-effort vs exhaustive MIA greedy, %d nodes (same answer, k=5)",
			smallDS.Graph.NumNodes()),
		"engine", "mean latency", "exact evals/query", "spread")
	gammas2 := queryGammas(sm.NumTopics(), 4, e.seed^0xe4b)
	var tFast, tSlow bench.Timer
	var evalsFast, spreadFast, spreadSlow float64
	for qi, gamma := range gammas2 {
		var res *otim.Result
		tFast.Time(func() { res, err = sEng.Query(gamma, otim.QueryOptions{K: 5, Theta: 0.01}) })
		if err != nil {
			return err
		}
		evalsFast += float64(res.Stats.ExactEvals)
		spreadFast += res.Spreads[len(res.Spreads)-1]
		var nres *otim.NaiveResult
		tSlow.Time(func() {
			nres, err = otim.NaiveQuery(sm, gamma, 5, otim.NaiveMIAGreedy, 0.01, e.seed+uint64(qi))
		})
		if err != nil {
			return err
		}
		spreadSlow += nres.Spreads[len(nres.Spreads)-1]
	}
	n2 := float64(len(gammas2))
	tab2.Row("best-effort", tFast.Mean(), evalsFast/n2, spreadFast/n2)
	tab2.Row("exhaustive greedy", tSlow.Mean(),
		float64(5*smallDS.Graph.NumNodes()), spreadSlow/n2)

	// The era's "traditional IM": CELF greedy with Monte-Carlo spread
	// estimation — what Section I's naive solution would actually run.
	// One query is enough to place it orders of magnitude away.
	var tCELF bench.Timer
	var celfSpread float64
	tCELF.Time(func() {
		res, cerr := im.CELFGreedy(sm, gammas2[0], 5, 100, rng.New(e.seed^0xce))
		if cerr != nil {
			err = cerr
			return
		}
		celfSpread = res.Spreads[len(res.Spreads)-1]
	})
	if err != nil {
		return err
	}
	tab2.Row("CELF + MC (traditional)", tCELF.Mean(),
		float64(smallDS.Graph.NumNodes()), celfSpread)
	tab2.Render(e.out)
	fmt.Fprintln(e.out, "paper claim: traditional per-query IM (MC greedy, exhaustive MIA "+
		"greedy) is orders of magnitude too slow for online use; the best-effort engine "+
		"answers the same greedy query online. IMM narrows the latency gap on mid-size "+
		"graphs but returns lower topic-aware spread")
	return nil
}

// E5 — bound pruning effectiveness ablation.
func runE5(e *env) error {
	sys, ds, err := e.citationSystem()
	if err != nil {
		return err
	}
	ix := sys.OTIMIndex()
	eng := otim.NewEngine(ix)
	gammas := queryGammas(sys.Propagation().NumTopics(), e.sizes.queryReps, e.seed^0xe5)
	n := ds.Graph.NumNodes()

	type config struct {
		name string
		opt  otim.QueryOptions
	}
	configs := []config{
		{"precomp+local (default)", otim.QueryOptions{K: 10, Theta: 0.01}},
		{"precomp only", otim.QueryOptions{K: 10, Theta: 0.01, SkipLocalBound: true}},
		{"neighborhood+local", otim.QueryOptions{K: 10, Theta: 0.01, FirstBound: otim.BoundNeighborhood}},
		{"neighborhood only", otim.QueryOptions{K: 10, Theta: 0.01, FirstBound: otim.BoundNeighborhood, SkipLocalBound: true}},
		{"default + eps=0.1", otim.QueryOptions{K: 10, Theta: 0.01, Epsilon: 0.1}},
	}
	tab := bench.NewTable(
		fmt.Sprintf("E5: bound configurations, k=10, n=%d (means over %d queries)", n, len(gammas)),
		"bounds", "latency", "local bounds", "exact evals", "pruned %")
	for _, cfg := range configs {
		var t bench.Timer
		var locals, exacts, pruned float64
		for _, gamma := range gammas {
			var res *otim.Result
			t.Time(func() { res, err = eng.Query(gamma, cfg.opt) })
			if err != nil {
				return err
			}
			locals += float64(res.Stats.LocalBounds)
			exacts += float64(res.Stats.ExactEvals)
			pruned += float64(res.Stats.Pruned)
		}
		q := float64(len(gammas))
		tab.Row(cfg.name, t.Mean(), locals/q, exacts/q, 100*pruned/q/float64(n))
	}
	tab.Render(e.out)
	fmt.Fprintln(e.out, "paper claim: tighter bounds prune more users before exact evaluation; "+
		"the precomputation bound dominates the neighborhood bound")
	return nil
}

// E6 — topic-sample index: hit rate, latency, and answer quality.
func runE6(e *env) error {
	ds, err := e.smallDS()
	if err != nil {
		return err
	}
	m := ds.Truth
	z := m.NumTopics()
	gammas := queryGammas(z, 30, e.seed^0xe6)

	tab := bench.NewTable("E6: topic-sample index vs sample count L (tolerance 0.2, k=10)",
		"L", "build", "hit rate %", "mean latency", "spread ratio vs full")
	for _, L := range []int{0, z, 4 * z, 16 * z} {
		var build bench.Timer
		var ix *otim.Index
		build.Time(func() {
			ix, err = otim.BuildIndex(m, otim.BuildOptions{
				ThetaPre: 0.001, Samples: L, SampleK: 10, Seed: e.seed,
			})
		})
		if err != nil {
			return err
		}
		eng := otim.NewEngine(ix)
		var t bench.Timer
		hits := 0
		ratioSum, ratioN := 0.0, 0
		for _, gamma := range gammas {
			var res *otim.Result
			t.Time(func() {
				res, err = eng.Query(gamma, otim.QueryOptions{
					K: 10, Theta: 0.01, UseSamples: true, SampleTolerance: 0.2,
				})
			})
			if err != nil {
				return err
			}
			if res.Stats.SampleHit {
				hits++
				full, err := eng.Query(gamma, otim.QueryOptions{K: 10, Theta: 0.01})
				if err != nil {
					return err
				}
				if f := full.Spreads[len(full.Spreads)-1]; f > 0 {
					ratioSum += res.Spreads[len(res.Spreads)-1] / f
					ratioN++
				}
			}
		}
		ratio := 1.0
		if ratioN > 0 {
			ratio = ratioSum / float64(ratioN)
		}
		tab.Row(L, build.Mean(), 100*float64(hits)/float64(len(gammas)), t.Mean(), ratio)
	}
	tab.Render(e.out)
	fmt.Fprintln(e.out, "paper claim: offline topic samples answer nearby queries directly "+
		"with near-optimal spread, cutting latency further")
	return nil
}
