package main

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"octopus/internal/actionlog"
	"octopus/internal/bench"
	"octopus/internal/core"
	"octopus/internal/datagen"
	"octopus/internal/graph"
	"octopus/internal/store"
	"octopus/internal/stream"
	"octopus/internal/tic"
)

// streamHoldout is a full dataset split into a base system (built ahead
// of time, as the paper's offline stage) and a held-back tail of events
// to be replayed live.
type streamHoldout struct {
	ds       *datagen.Dataset
	base     *core.System
	edges    []stream.EdgeEvent // held-out follow edges
	episodes []actionlog.Episode
}

// buildStreamHoldout withholds every 20th edge and the last 20% of
// episodes from the base build.
func buildStreamHoldout(e *env) (*streamHoldout, error) {
	ds, err := datagen.Citation(datagen.CitationConfig{
		Authors: e.sizes.streamAuthors,
		Topics:  6,
		Seed:    e.seed ^ 0xe13,
	})
	if err != nil {
		return nil, err
	}
	full := ds.Graph
	bb := graph.NewBuilder(full.NumNodes())
	var held []stream.EdgeEvent
	i := 0
	full.EachEdge(func(_ graph.EdgeID, u, v graph.NodeID) {
		if i%20 == 19 {
			held = append(held, stream.EdgeEvent{Src: u, Dst: v})
		} else {
			bb.AddEdge(u, v)
		}
		i++
	})
	for u, nm := range full.Names() {
		if nm != "" {
			bb.SetName(graph.NodeID(u), nm)
		}
	}
	baseG := bb.Build()
	baseModel, err := tic.Remap(ds.Truth, baseG, nil)
	if err != nil {
		return nil, err
	}
	split := len(ds.Log.Episodes) * 4 / 5
	headLog := actionlog.Build(baseG.NumNodes(),
		episodeItems(ds.Log.Episodes[:split]), episodeActions(ds.Log.Episodes[:split]))
	base, err := core.Build(baseG, headLog, core.Config{
		GroundTruth:      baseModel,
		GroundTruthWords: ds.TruthWords,
		TopicNames:       ds.TopicNames,
		Seed:             e.seed ^ 0x1313,
	})
	if err != nil {
		return nil, err
	}
	return &streamHoldout{
		ds:       ds,
		base:     base,
		edges:    held,
		episodes: ds.Log.Episodes[split:],
	}, nil
}

func episodeItems(eps []actionlog.Episode) []actionlog.Item {
	out := make([]actionlog.Item, 0, len(eps))
	for _, ep := range eps {
		out = append(out, ep.Item)
	}
	return out
}

func episodeActions(eps []actionlog.Episode) []actionlog.Action {
	var out []actionlog.Action
	for _, ep := range eps {
		out = append(out, ep.Actions...)
	}
	return out
}

// replayResult aggregates one replay run.
type replayResult struct {
	events    int
	wall      time.Duration
	queries   int64
	qErrors   int64
	qLat      bench.Timer
	snapshots uint64
	swapMean  time.Duration
	pending   int
	version   uint64

	// Durability counters (WAL-backed replays only).
	walSyncs    uint64
	walBytes    int64
	checkpoints uint64
}

// replay streams the holdout into a LiveSystem in interleaved batches
// while query workers hammer the current snapshot, then force-folds.
// With a non-empty walDir the ingester runs durably: write-ahead
// logging with per-drain fsync plus a checkpoint per snapshot swap —
// the E14 WAL-overhead configuration.
func replay(h *streamHoldout, rebuildEvents, batchSize int, walDir string) (*replayResult, error) {
	cfg := stream.Config{
		RebuildEvents: rebuildEvents,
		BufferBatches: 32,
	}
	if walDir != "" {
		d, _, err := store.Open(walDir)
		if err != nil {
			return nil, err
		}
		cfg.Store = d
	}
	ls, err := stream.NewLiveSystem(h.base, cfg)
	if err != nil {
		return nil, err
	}
	defer ls.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	var queries, qErrors atomic.Int64
	var latMu sync.Mutex
	var qLat bench.Timer
	queryTerms := [][]string{{"mining", "data"}, {"learning", "systems"}, {"query"}}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for qi := 0; ; qi++ {
				select {
				case <-stop:
					return
				default:
				}
				start := time.Now()
				_, err := ls.DiscoverInfluencers(queryTerms[qi%len(queryTerms)],
					core.DiscoverOptions{K: 5})
				d := time.Since(start)
				if err != nil {
					qErrors.Add(1)
				} else {
					queries.Add(1)
					latMu.Lock()
					qLat.Add(d)
					latMu.Unlock()
				}
			}
		}(w)
	}

	// Interleave edge batches and episode batches, oldest first.
	begin := time.Now()
	events := 0
	ei, pi := 0, 0
	for ei < len(h.edges) || pi < len(h.episodes) {
		if ei < len(h.edges) {
			hi := ei + batchSize
			if hi > len(h.edges) {
				hi = len(h.edges)
			}
			if err := ls.IngestEdges(h.edges[ei:hi]); err != nil {
				return nil, err
			}
			events += hi - ei
			ei = hi
		}
		for b := 0; b < batchSize && pi < len(h.episodes); b++ {
			ep := h.episodes[pi]
			pi++
			if err := ls.IngestActions([]actionlog.Item{ep.Item}, ep.Actions); err != nil {
				return nil, err
			}
			events += 1 + len(ep.Actions)
		}
	}
	if err := ls.ForceSnapshot(); err != nil {
		return nil, err
	}
	wall := time.Since(begin)
	close(stop)
	wg.Wait()

	st := ls.Stats()
	res := &replayResult{
		events:    events,
		wall:      wall,
		queries:   queries.Load(),
		qErrors:   qErrors.Load(),
		qLat:      qLat,
		snapshots: st.Snapshots,
		pending:   st.Pending,
		version:   st.Version,

		walSyncs:    st.WALSyncs,
		walBytes:    st.WALBytesLogged,
		checkpoints: st.Checkpoints,
	}
	if st.Snapshots > 0 {
		res.swapMean = time.Duration(st.TotalSwapMillis / float64(st.Snapshots) * 1e6)
	}
	if st.Pending != 0 {
		return nil, fmt.Errorf("replay left %d pending events after ForceSnapshot", st.Pending)
	}
	if res.qErrors > 0 {
		return nil, fmt.Errorf("%d queries failed during replay", res.qErrors)
	}
	// Every held-out edge and episode must have landed.
	finalStats := ls.System().Stats()
	if finalStats.Edges != h.ds.Graph.NumEdges() {
		return nil, fmt.Errorf("final edges %d != full graph %d", finalStats.Edges, h.ds.Graph.NumEdges())
	}
	if finalStats.Episodes != len(h.ds.Log.Episodes) {
		return nil, fmt.Errorf("final episodes %d != full log %d", finalStats.Episodes, len(h.ds.Log.Episodes))
	}
	return res, nil
}

// E13 — replay a held-out event stream into a LiveSystem at several
// rebuild thresholds: ingest throughput, snapshot-swap latency (paid off
// the hot path) and the staleness-vs-rebuild-cost trade-off, with
// concurrent queries that must never fail.
func runE13(e *env) error {
	h, err := buildStreamHoldout(e)
	if err != nil {
		return err
	}
	fmt.Fprintf(e.out, "[stream holdout: base %d nodes / %d edges / %d episodes; replaying %d edges + %d episodes]\n",
		h.base.Graph().NumNodes(), h.base.Graph().NumEdges(), len(h.base.ActionLog().Episodes),
		len(h.edges), len(h.episodes))

	tab := bench.NewTable(
		fmt.Sprintf("E13: ingest replay on %d-author citation stream (batch=%d, 2 query workers)",
			e.sizes.streamAuthors, e.sizes.streamBatch),
		"rebuild@", "events", "events/s", "snapshots", "mean swap", "queries", "mean q-lat", "final ver")
	for _, rebuildEvents := range []int{e.sizes.streamBatch * 4, e.sizes.streamBatch * 16} {
		res, err := replay(h, rebuildEvents, e.sizes.streamBatch, "")
		if err != nil {
			return err
		}
		eps := float64(res.events) / res.wall.Seconds()
		tab.Row(rebuildEvents, res.events, fmt.Sprintf("%.0f", eps), res.snapshots,
			res.swapMean, res.queries, res.qLat.Mean(), res.version)
	}
	tab.Render(e.out)
	fmt.Fprintln(e.out, "note: smaller rebuild@ bounds staleness tighter but pays more frequent")
	fmt.Fprintln(e.out, "      snapshot rebuilds; queries keep serving the previous snapshot either way.")
	return nil
}
