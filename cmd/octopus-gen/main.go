// Command octopus-gen generates synthetic datasets (graph + action log)
// to files in the text formats the library loads, so experiments can be
// re-run against fixed inputs.
//
// Usage:
//
//	octopus-gen -dataset citation -n 5000 -topics 8 -seed 1 -out data/
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"octopus/internal/actionlog"
	"octopus/internal/datagen"
	"octopus/internal/graph"
)

func main() {
	dataset := flag.String("dataset", "citation", "citation or social")
	n := flag.Int("n", 5000, "number of users/authors")
	topics := flag.Int("topics", 8, "number of topics")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("out", ".", "output directory")
	flag.Parse()

	var ds *datagen.Dataset
	var err error
	switch *dataset {
	case "citation":
		ds, err = datagen.Citation(datagen.CitationConfig{Authors: *n, Topics: *topics, Seed: *seed})
	case "social":
		ds, err = datagen.Social(datagen.SocialConfig{Users: *n, Topics: *topics, Seed: *seed})
	default:
		log.Fatalf("unknown dataset %q", *dataset)
	}
	if err != nil {
		log.Fatal(err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}

	gpath := filepath.Join(*out, *dataset+"-graph.txt")
	gf, err := os.Create(gpath)
	if err != nil {
		log.Fatal(err)
	}
	if err := graph.WriteText(gf, ds.Graph); err != nil {
		log.Fatal(err)
	}
	if err := gf.Close(); err != nil {
		log.Fatal(err)
	}

	lpath := filepath.Join(*out, *dataset+"-log.txt")
	lf, err := os.Create(lpath)
	if err != nil {
		log.Fatal(err)
	}
	if err := actionlog.Write(lf, ds.Log); err != nil {
		log.Fatal(err)
	}
	if err := lf.Close(); err != nil {
		log.Fatal(err)
	}

	st := ds.Graph.ComputeStats()
	fmt.Printf("wrote %s (%d nodes, %d edges, max deg %d)\n", gpath, st.Nodes, st.Edges, st.MaxOutDeg)
	fmt.Printf("wrote %s (%d episodes, %d actions)\n", lpath, len(ds.Log.Episodes), ds.Log.NumActions())
}
