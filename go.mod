module octopus

go 1.22
